//! One event queue for both worlds: the unified control loop.
//!
//! The batch loops of §6 stitch two clocks together — `mdn-net` is a
//! discrete-event simulator, while the acoustic side advances in
//! fixed-tick capture windows driven by an outer `for` loop. The seams
//! between the two are where the boundary bugs live (see the half-open
//! `run_until` fix in `mdn-net`). [`UnifiedLoop`] removes the seam: tone
//! emissions, capture-window boundaries, self-heal passes, fault
//! transitions, and application ticks all ride the *network's* event
//! heap, interleaved with packet deliveries on one deterministic
//! `(time, seq)` order.
//!
//! # Event taxonomy
//!
//! The network heap natively carries `Deliver`, `PortFree`, and
//! `Generate` events. Control-plane events are encoded as
//! [`mdn_net::sim::Event::Tick`] entries whose tag indexes a registry of
//! [`ControlEvent`]s owned by the loop:
//!
//! * **ToneEmission** — a named switch sounds one of its slots. The
//!   device is resolved from the *current* plan at fire time, so an
//!   emission scheduled before an evacuation plays from the migrated
//!   switch's patched allocation (boosted level, spare slots), exactly
//!   as the physical switch would.
//! * **WindowBoundary** — close the capture window that ends here: run
//!   the sharded listen over `[window_start, now)` and schedule the
//!   matching *SelfHealTick* at the same instant (it lands later in the
//!   tie order, so every same-time event fires first). The next
//!   boundary is scheduled one window ahead; the chain is self-sustaining.
//! * **SelfHealTick** — the reacting half: fold the observed events into
//!   ambient floors, the health ledger, and (at most) one evacuation,
//!   then retire emissions the next capture can no longer see.
//! * **Fault** — a [`NetFault`] transition (link down/up, switch
//!   crash/restart) applied to the network at its scheduled instant
//!   rather than at the next batch-tick boundary.
//! * **App** — an opaque caller token; [`UnifiedLoop::step`] returns it
//!   so application policy (rule installs, traffic changes, emission
//!   scheduling) runs interleaved with the control plane.
//!
//! Detector *frame* completions are deliberately **not** heap events:
//! the frame grid is a pure function of the capture window (frame `k`
//! spans `[w.from + k·frame, …)`), so materialising per-frame events
//! would add heap traffic without adding information. The window
//! boundary is the finest-grained instant at which frames become
//! observable.
//!
//! # Determinism contract
//!
//! The heap orders by `(time, seq)` with `seq` assigned at schedule
//! time, so equal-time events fire in schedule order and a run is a
//! pure function of its inputs. Emissions only append to the scene, and
//! a rendered sample can only depend on emissions whose (propagation-
//! delayed) signal has already started — so adding emissions as their
//! events fire produces byte-identical windows to pre-building the
//! whole scene, and the event-driven loop decodes bit-identical
//! [`ShardEvent`] streams to the batch loop for **any** thread count
//! (the sharded merge is already order-canonical). The equivalence
//! proptest in `tests/event_loop_equivalence.rs` pins this.
//!
//! # Boundary convention
//!
//! Everything is half-open. A window spans `[from, from + len)`; an
//! event at exactly a window's end belongs to the *next* window, both
//! on the network heap (`run_until`'s `[now, deadline)`) and in the
//! expected-device ledger (an emission firing exactly at a boundary is
//! carried to the following window's expectations, matching where its
//! samples land).

use crate::controller::{ShardEvent, LISTEN_PRE_ROLL};
use crate::selfheal::{SelfHealingController, TickReport};
use mdn_acoustics::scene::Scene;
use mdn_acoustics::speaker::Speaker;
use mdn_audio::signal::Window;
use mdn_net::faults::NetFault;
use mdn_net::network::{Network, RunOutcome};
use mdn_obs::{SpanKind, TraceId, TraceSink, TraceSpan};
use std::collections::BTreeMap;
use std::time::Duration;
use std::time::Instant;

/// A control-plane event carried on the network heap as a tagged tick.
#[derive(Debug, Clone)]
enum ControlEvent {
    /// Device `name` sounds set-local `slot` for `duration`.
    Emission {
        device: String,
        slot: usize,
        duration: Duration,
        /// The tone's causal trace (`None` when tracing is off).
        trace: Option<(TraceId, usize)>,
    },
    /// Close the capture window ending now; observe it.
    WindowBoundary,
    /// React to the window just observed (retune, health, evacuate).
    SelfHealTick,
    /// Apply a network fault transition.
    Fault(NetFault),
    /// Opaque application token, surfaced through [`Step::App`].
    App(u64),
}

/// Why [`UnifiedLoop::step`] returned control to the caller.
#[derive(Debug, Clone)]
pub enum Step {
    /// A capture window closed and its heal pass ran; the report covers
    /// the window `[report window's start, boundary)`.
    Window {
        /// The window the report describes.
        window: Window,
        /// What the self-heal pass observed and did.
        report: TickReport,
    },
    /// An application event scheduled via [`UnifiedLoop::schedule_app`]
    /// fired; handle it and call [`UnifiedLoop::step`] again.
    App {
        /// The token passed at scheduling time.
        token: u64,
        /// Virtual time of the event.
        at: Duration,
    },
    /// The horizon was reached (or the heap ran dry before it).
    Done,
}

/// The unified event-driven control loop: a [`Network`], a [`Scene`],
/// and a [`SelfHealingController`] advanced by one deterministic event
/// queue.
///
/// The loop owns all three worlds; callers schedule work with
/// [`UnifiedLoop::schedule_emission`], [`UnifiedLoop::schedule_fault`],
/// and [`UnifiedLoop::schedule_app`], then pump [`UnifiedLoop::step`]
/// until it returns [`Step::Done`]. While a `UnifiedLoop` owns the
/// network, all ticks must go through the loop — scheduling raw ticks
/// via [`Network::schedule_tick`] would collide with the loop's tag
/// registry.
#[derive(Debug)]
pub struct UnifiedLoop {
    net: Network,
    scene: Scene,
    heal: SelfHealingController,
    window_len: Duration,
    /// Start of the capture window currently accumulating.
    window_start: Duration,
    /// Tag registry: heap tick `tag` indexes this; entries are one-shot.
    tags: Vec<Option<ControlEvent>>,
    /// Emissions fired but not yet folded into a heal pass, in fire
    /// (time, seq) order.
    pending_expected: Vec<PendingTone>,
    /// A window observed at its boundary, awaiting its SelfHealTick:
    /// the window, its decoded events, and the observation's wall cost.
    observed: Option<(Window, Vec<ShardEvent>, u64)>,
    /// When set, each heal pass retires emissions that ended (plus this
    /// propagation bound) before the next capture's pre-roll, keeping
    /// the scene O(active) over long soaks.
    retire_delay_bound: Option<Duration>,
    /// When set, every fired device drives this speaker instead of the
    /// default testbed hardware — the hall's installed loudspeaker model.
    speaker: Option<Speaker>,
    emit_failures: u64,
    emissions_fired: u64,
    emissions_retired: u64,
    /// Causal-trace sink; disabled (free) unless attached.
    trace: TraceSink,
    /// Per-device schedule sequence numbers for [`TraceId::derive`].
    /// Only advanced while tracing is on.
    trace_seq: BTreeMap<String, u64>,
}

/// One fired-but-not-yet-healed emission in the expected-device ledger.
#[derive(Debug, Clone)]
struct PendingTone {
    /// Fire time (emission start).
    at: Duration,
    /// The scheduled device name.
    device: String,
    /// Tracing context: `(id, cell, scheduled signal end)`.
    trace: Option<(TraceId, usize, Duration)>,
}

impl UnifiedLoop {
    /// Wire the three worlds together with capture windows of
    /// `window_len`. The first window starts at the network's current
    /// time (normally zero) and the first boundary is scheduled one
    /// window ahead.
    pub fn new(
        net: Network,
        scene: Scene,
        heal: SelfHealingController,
        window_len: Duration,
    ) -> Self {
        Self::try_new(net, scene, heal, window_len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible construction: a degenerate window length comes back as a
    /// typed [`mdn_obs::ConfigError`] instead of a panic — the entry
    /// point scenario lowering uses.
    pub fn try_new(
        net: Network,
        scene: Scene,
        heal: SelfHealingController,
        window_len: Duration,
    ) -> Result<Self, mdn_obs::ConfigError> {
        if window_len == Duration::ZERO {
            return Err(mdn_obs::ConfigError::new(
                "window_len",
                "capture windows must be longer than zero",
            ));
        }
        let window_start = net.now();
        let mut lp = Self {
            net,
            scene,
            heal,
            window_len,
            window_start,
            tags: Vec::new(),
            pending_expected: Vec::new(),
            observed: None,
            retire_delay_bound: None,
            speaker: None,
            emit_failures: 0,
            emissions_fired: 0,
            emissions_retired: 0,
            trace: TraceSink::disabled(),
            trace_seq: BTreeMap::new(),
        };
        lp.schedule_control(window_start + window_len, ControlEvent::WindowBoundary);
        Ok(lp)
    }

    /// Enable scene garbage collection: after each heal pass, retire
    /// emissions whose signal (plus `delay_bound` of propagation) ended
    /// before the next capture's pre-roll. `delay_bound` must be at
    /// least the worst-case source→listener delay in the hall; windows
    /// stay byte-identical (see `Scene::retire_emissions_before`).
    pub fn set_retire_delay_bound(&mut self, delay_bound: Option<Duration>) {
        self.retire_delay_bound = delay_bound;
    }

    /// Fit the hall's switches with `speaker` instead of the default
    /// cheap testbed hardware (e.g. [`Speaker::ultrasound_capable`] for
    /// halls whose [`CellConfig::speaker_band`](crate::cells::CellConfig)
    /// was widened to unlock high sub-bands). For tones the default
    /// speaker could already drive, rendering is byte-identical — the
    /// models differ only in band, duration floor, and level ceiling.
    pub fn set_speaker(&mut self, speaker: Option<Speaker>) {
        self.speaker = speaker;
    }

    /// Attach a causal-trace sink: every emission scheduled from here on
    /// mints a deterministic [`TraceId`] and records a span per pipeline
    /// hop it takes — `schedule`, `emit` (via the scene), `window_close`,
    /// `detect`, then `decode` or the `missed` → `health_penalty` →
    /// `replan` chain. Span sim-time bounds are bit-identical across
    /// thread counts; wall costs are diagnostic only.
    pub fn attach_trace(&mut self, sink: &TraceSink) {
        self.trace = sink.clone();
        self.scene.attach_trace(sink);
    }

    /// Schedule device `name` to sound set-local `slot` at `at` for
    /// `duration`. The device is resolved from the plan current at fire
    /// time; the emission is added to the next window's expected set.
    pub fn schedule_emission(
        &mut self,
        at: Duration,
        name: impl Into<String>,
        slot: usize,
        duration: Duration,
    ) {
        let device = name.into();
        let trace = if self.trace.is_enabled() {
            // (cell, switch) come from the plan at *schedule* time — the
            // id names the tone as asked for, even if an evacuation later
            // migrates the device before it fires.
            let (cell, switch) = self
                .heal
                .plan()
                .find_device(&device)
                .unwrap_or((usize::MAX, usize::MAX));
            let seq = self.trace_seq.entry(device.clone()).or_insert(0);
            let id = TraceId::derive(cell as u64, switch as u64, *seq);
            *seq += 1;
            self.trace.record(TraceSpan {
                trace: id,
                kind: SpanKind::Schedule,
                from: self.net.now().min(at),
                to: at.max(self.net.now()),
                wall_ns: 0,
                cell,
                detail: format!("{device} slot {slot}"),
            });
            Some((id, cell))
        } else {
            None
        };
        self.schedule_control(
            at,
            ControlEvent::Emission {
                device,
                slot,
                duration,
                trace,
            },
        );
    }

    /// Schedule a network fault transition at `at`.
    pub fn schedule_fault(&mut self, at: Duration, fault: NetFault) {
        self.schedule_control(at, ControlEvent::Fault(fault));
    }

    /// Schedule an application event at `at`; [`UnifiedLoop::step`]
    /// returns [`Step::App`] with `token` when it fires.
    pub fn schedule_app(&mut self, at: Duration, token: u64) {
        self.schedule_control(at, ControlEvent::App(token));
    }

    fn schedule_control(&mut self, at: Duration, ev: ControlEvent) {
        let tag = self.tags.len() as u64;
        self.tags.push(Some(ev));
        self.net.schedule_tick(at, tag);
    }

    /// Advance the unified queue until an application event fires, a
    /// capture window closes, or `horizon` is reached (half-open: an
    /// event at exactly `horizon` stays pending). Pump in a
    /// `while !matches!(lp.step(h), Step::Done)` loop — or match on the
    /// outcome to interleave policy.
    pub fn step(&mut self, horizon: Duration) -> Step {
        loop {
            let (tag, at) = match self.net.run_until(horizon) {
                RunOutcome::DeadlineReached | RunOutcome::Exhausted => return Step::Done,
                RunOutcome::Tick { tag, at } => (tag, at),
            };
            let Some(ev) = self.tags.get_mut(tag as usize).and_then(Option::take) else {
                debug_assert!(false, "tick tag {tag} not in the loop's registry");
                continue;
            };
            match ev {
                ControlEvent::App(token) => return Step::App { token, at },
                ControlEvent::Fault(fault) => match fault {
                    NetFault::LinkDown(l) => self.net.set_link_up(l, false),
                    NetFault::LinkUp(l) => self.net.set_link_up(l, true),
                    NetFault::SwitchCrash(s) => self.net.crash_switch(s),
                    NetFault::SwitchRestart(s) => self.net.restart_switch(s),
                },
                ControlEvent::Emission {
                    device,
                    slot,
                    duration,
                    trace,
                } => {
                    self.fire_emission(at, device, slot, duration, trace);
                }
                ControlEvent::WindowBoundary => {
                    let w = Window::between(self.window_start, at);
                    let observe_started = self.trace.is_enabled().then(Instant::now);
                    let events = self.heal.observe_window(&self.scene, w);
                    let observe_wall_ns = observe_started
                        .map_or(0, |t| t.elapsed().as_nanos() as u64);
                    self.observed = Some((w, events, observe_wall_ns));
                    // Same instant, later seq: every already-scheduled
                    // event at `at` fires before the heal pass.
                    self.schedule_control(at, ControlEvent::SelfHealTick);
                    self.schedule_control(at + self.window_len, ControlEvent::WindowBoundary);
                }
                ControlEvent::SelfHealTick => {
                    let (w, events, observe_wall_ns) = self
                        .observed
                        .take()
                        .expect("a SelfHealTick always follows its WindowBoundary");
                    let boundary = w.end();
                    // Half-open: an emission at exactly the boundary
                    // belongs to the next window, like its samples.
                    let split = self
                        .pending_expected
                        .partition_point(|tone| tone.at < boundary);
                    let drained: Vec<PendingTone> =
                        self.pending_expected.drain(..split).collect();
                    let expected: Vec<String> =
                        drained.iter().map(|tone| tone.device.clone()).collect();
                    let heal_started = self.trace.is_enabled().then(Instant::now);
                    let report = self.heal.heal_pass(&self.scene, w, &expected, events);
                    if self.trace.is_enabled() {
                        let heal_wall_ns =
                            heal_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                        self.trace_window_hops(&drained, w, &report, observe_wall_ns, heal_wall_ns);
                    }
                    self.window_start = boundary;
                    if let Some(bound) = self.retire_delay_bound {
                        let cutoff = boundary.saturating_sub(LISTEN_PRE_ROLL);
                        self.emissions_retired +=
                            self.scene.retire_emissions_before(cutoff, bound) as u64;
                    }
                    return Step::Window { window: w, report };
                }
            }
        }
    }

    fn fire_emission(
        &mut self,
        at: Duration,
        device: String,
        slot: usize,
        duration: Duration,
        trace: Option<(TraceId, usize)>,
    ) {
        if let Some((id, cell)) = trace {
            // Armed before the emit so the scene stamps the `emit` span
            // with the signal's true air time; a failed emit never
            // reaches `Scene::add`, so disarm below.
            self.scene.set_next_emission_trace(id, cell);
        }
        match self.heal.plan().sounding_device(&device) {
            Some(mut dev) => {
                if let Some(sp) = &self.speaker {
                    dev.speaker = sp.clone();
                }
                if dev.emit_slot(&mut self.scene, slot, at, duration).is_err() {
                    self.emit_failures += 1;
                    self.scene.clear_emission_trace();
                }
            }
            None => {
                self.emit_failures += 1;
                self.scene.clear_emission_trace();
            }
        }
        self.emissions_fired += 1;
        // Scheduled means expected either way: a device that failed to
        // sound should be missed-evidence, exactly as a silent switch.
        self.pending_expected.push(PendingTone {
            at,
            device,
            trace: trace.map(|(id, cell)| (id, cell, at + duration)),
        });
    }

    /// Record the window-resolution hops for every tone the heal pass
    /// just folded in. Runs only while tracing is on, always on the loop
    /// thread, iterating tones in fire order — so span order (and every
    /// sim-time field) is deterministic; only the wall costs vary.
    fn trace_window_hops(
        &self,
        drained: &[PendingTone],
        w: Window,
        report: &TickReport,
        observe_wall_ns: u64,
        heal_wall_ns: u64,
    ) {
        let boundary = w.end();
        for tone in drained {
            let Some((id, cell, end)) = tone.trace else {
                continue;
            };
            // The tone's samples are down; the window boundary is what
            // makes them observable.
            self.trace.record(TraceSpan {
                trace: id,
                kind: SpanKind::WindowClose,
                from: end.min(boundary),
                to: boundary,
                wall_ns: 0,
                cell,
                detail: tone.device.clone(),
            });
            // The sharded listen covers the whole window; its wall cost
            // is shared by every tone the window resolves.
            self.trace.record(TraceSpan {
                trace: id,
                kind: SpanKind::Detect,
                from: w.from,
                to: boundary,
                wall_ns: observe_wall_ns,
                cell,
                detail: tone.device.clone(),
            });
            let first_decode = report
                .events
                .iter()
                .find(|se| se.event.device == tone.device);
            if let Some(se) = first_decode {
                self.trace.record(TraceSpan {
                    trace: id,
                    kind: SpanKind::Decode,
                    from: se.event.time.min(boundary),
                    to: boundary,
                    wall_ns: 0,
                    cell,
                    detail: format!(
                        "{} slot {} @{:.0}Hz",
                        tone.device, se.event.slot, se.event.freq_hz
                    ),
                });
                continue;
            }
            // Negative trace: scheduled but never heard. This is the
            // evidence chain an evacuation is built from, so it stays on
            // the tone's own id.
            self.trace.record(TraceSpan {
                trace: id,
                kind: SpanKind::Missed,
                from: tone.at.min(boundary),
                to: boundary,
                wall_ns: 0,
                cell,
                detail: tone.device.clone(),
            });
            self.trace.record(TraceSpan {
                trace: id,
                kind: SpanKind::HealthPenalty,
                from: boundary,
                to: boundary,
                wall_ns: 0,
                cell,
                detail: format!(
                    "{} acoustic_score {:.1}",
                    tone.device,
                    self.heal.health().acoustic_score(&tone.device)
                ),
            });
            if report.replanned == Some(cell) {
                self.trace.record(TraceSpan {
                    trace: id,
                    kind: SpanKind::Replan,
                    from: boundary,
                    to: boundary,
                    wall_ns: heal_wall_ns,
                    cell,
                    detail: format!("evacuated cell {cell}"),
                });
            }
        }
    }

    /// The wrapped network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable network access (rules, generators, topology). Do not
    /// schedule raw ticks here; use the loop's scheduling methods.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The acoustic scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Mutable scene access (ambient beds, out-of-band emissions).
    pub fn scene_mut(&mut self) -> &mut Scene {
        &mut self.scene
    }

    /// The self-healing controller.
    pub fn heal(&self) -> &SelfHealingController {
        &self.heal
    }

    /// Mutable controller access (thread tuning via `sharded_mut`).
    pub fn heal_mut(&mut self) -> &mut SelfHealingController {
        &mut self.heal
    }

    /// Capture window length.
    pub fn window_len(&self) -> Duration {
        self.window_len
    }

    /// Start of the window currently accumulating.
    pub fn window_start(&self) -> Duration {
        self.window_start
    }

    /// Emissions whose device could not be resolved or whose slot the
    /// speaker refused.
    pub fn emit_failures(&self) -> u64 {
        self.emit_failures
    }

    /// Tone emissions fired so far.
    pub fn emissions_fired(&self) -> u64 {
        self.emissions_fired
    }

    /// Emissions retired by scene garbage collection so far.
    pub fn emissions_retired(&self) -> u64 {
        self.emissions_retired
    }

    /// Tear the loop apart (network, scene, controller) for inspection.
    pub fn into_parts(self) -> (Network, Scene, SelfHealingController) {
        (self.net, self.scene, self.heal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{CellConfig, CellPlan};
    use mdn_acoustics::ambient::AmbientProfile;

    fn small_plan() -> CellPlan {
        CellPlan::plan(
            2,
            &[AmbientProfile::office()],
            CellConfig {
                switches_per_cell: 2,
                ..CellConfig::default()
            },
        )
        .expect("2-cell plan")
    }

    #[test]
    fn windows_close_in_order_and_report_heard_devices() {
        let plan = small_plan();
        let device = plan.cells()[0].device_names[0].clone();
        let scene = Scene::new(44_100, AmbientProfile::office());
        let heal = SelfHealingController::new(plan);
        let mut lp = UnifiedLoop::new(Network::new(), scene, heal, Duration::from_millis(300));

        lp.schedule_emission(Duration::from_millis(100), &device, 0, Duration::from_millis(60));
        let mut windows = Vec::new();
        loop {
            match lp.step(Duration::from_millis(950)) {
                Step::Window { window, report } => windows.push((window, report)),
                Step::App { .. } => unreachable!("no app events scheduled"),
                Step::Done => break,
            }
        }
        // Horizon is half-open, so the boundary at exactly 900 ms fires
        // but the one at 1200 ms does not.
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].0, Window::between(Duration::ZERO, Duration::from_millis(300)));
        assert!(windows[0].1.heard.contains(&device), "emission in window 0 decodes");
        assert!(windows[1].1.heard.is_empty() && windows[1].1.missed.is_empty());
    }

    #[test]
    fn emission_at_boundary_is_expected_in_the_next_window() {
        let plan = small_plan();
        let device = plan.cells()[0].device_names[0].clone();
        let scene = Scene::new(44_100, AmbientProfile::office());
        let heal = SelfHealingController::new(plan);
        let mut lp = UnifiedLoop::new(Network::new(), scene, heal, Duration::from_millis(300));

        // Exactly at the first boundary: samples land in [300, 600) ms,
        // so the expectation must too.
        lp.schedule_emission(Duration::from_millis(300), &device, 0, Duration::from_millis(60));
        let mut reports = Vec::new();
        while let Step::Window { report, .. } = lp.step(Duration::from_millis(700)) {
            reports.push(report);
        }
        assert_eq!(reports.len(), 2);
        assert!(
            reports[0].heard.is_empty() && reports[0].missed.is_empty(),
            "window 0 expects nothing"
        );
        assert!(reports[1].heard.contains(&device), "window 1 hears the boundary emission");
    }

    #[test]
    fn app_events_interleave_with_windows() {
        let plan = small_plan();
        let scene = Scene::new(44_100, AmbientProfile::office());
        let heal = SelfHealingController::new(plan);
        let mut lp = UnifiedLoop::new(Network::new(), scene, heal, Duration::from_millis(200));

        lp.schedule_app(Duration::from_millis(50), 7);
        lp.schedule_app(Duration::from_millis(350), 8);
        let mut order = Vec::new();
        loop {
            match lp.step(Duration::from_millis(500)) {
                Step::Window { window, .. } => order.push(format!("w@{}", window.end().as_millis())),
                Step::App { token, at } => order.push(format!("a{token}@{}", at.as_millis())),
                Step::Done => break,
            }
        }
        assert_eq!(order, ["a7@50", "w@200", "a8@350", "w@400"]);
    }
}
