//! Melodies: management symbols as timed tone sequences.
//!
//! The paper's title is literal — "sounds, if played in the right
//! sequence" (§4) carry management state. A [`MelodyCodec`] turns a string
//! of k-ary symbols into one Music Protocol `PlaySequence` frame (played
//! as a melody by the device's speaker) and decodes the controller's event
//! stream back into the symbol string. With a power-of-two alphabet it
//! also carries raw bytes, which puts a number on the channel's management
//!-plane throughput (the related work the paper cites measured ~20 bytes
//! per six seconds for acoustic data links; this codec lands in the same
//! regime).

use crate::controller::{collapse_events, MdnEvent};
use crate::encoder::{EmitError, SoundingDevice};
use mdn_acoustics::scene::Scene;
use std::time::Duration;

/// Errors from melody encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MelodyError {
    /// A symbol exceeds the alphabet size.
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: usize,
        /// The alphabet size.
        alphabet: usize,
    },
    /// Byte transport requires a power-of-two alphabet of at least 2.
    AlphabetNotPowerOfTwo(usize),
}

impl std::fmt::Display for MelodyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MelodyError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of {alphabet}")
            }
            MelodyError::AlphabetNotPowerOfTwo(n) => {
                write!(f, "byte transport needs a power-of-two alphabet, got {n}")
            }
        }
    }
}

impl std::error::Error for MelodyError {}

/// Timing and alphabet for melody transport. The alphabet is the sounding
/// device's frequency set: symbol `k` plays the set's local slot `k`.
#[derive(Debug, Clone, Copy)]
pub struct MelodyCodec {
    /// Alphabet size (must not exceed the device set's size at emit time).
    pub alphabet: usize,
    /// Per-symbol tone length. The default respects the 30 ms hardware
    /// floor with margin.
    pub tone: Duration,
    /// Silence between symbols (lets the detector separate repeats).
    pub gap: Duration,
}

impl MelodyCodec {
    /// A codec with the default timing (80 ms tone + 80 ms gap).
    pub fn new(alphabet: usize) -> Self {
        assert!(alphabet >= 2, "alphabet needs at least two symbols");
        Self {
            alphabet,
            tone: Duration::from_millis(80),
            gap: Duration::from_millis(80),
        }
    }

    /// Time taken per symbol.
    pub fn symbol_period(&self) -> Duration {
        self.tone + self.gap
    }

    /// Raw symbol rate, symbols/second.
    pub fn symbols_per_second(&self) -> f64 {
        1.0 / self.symbol_period().as_secs_f64()
    }

    /// Bits carried per symbol for byte transport (power-of-two alphabets).
    pub fn bits_per_symbol(&self) -> u32 {
        self.alphabet.ilog2()
    }

    /// Byte-transport throughput in bits/second.
    pub fn bits_per_second(&self) -> f64 {
        self.bits_per_symbol() as f64 * self.symbols_per_second()
    }

    /// Emit `symbols` as a melody from `device` starting at `start`;
    /// returns the end time.
    pub fn emit(
        &self,
        device: &mut SoundingDevice,
        scene: &mut Scene,
        symbols: &[usize],
        start: Duration,
    ) -> Result<Duration, EmitError> {
        // Symbol range is validated against the codec's alphabet first so
        // errors reference the codec, then against the device's set by
        // emit_melody.
        if let Some(&bad) = symbols.iter().find(|&&s| s >= self.alphabet) {
            return Err(EmitError::BadSlot {
                slot: bad,
                set_len: self.alphabet,
            });
        }
        device.emit_melody(scene, symbols, start, self.tone, self.gap)
    }

    /// Decode a controller event stream back into the symbol string sent
    /// by `device` (events may span several listen windows; they are
    /// collapsed and time-ordered).
    pub fn decode(&self, events: &[MdnEvent], device: &str) -> Vec<usize> {
        let mine: Vec<MdnEvent> = events
            .iter()
            .filter(|e| e.device == device && e.slot < self.alphabet)
            .cloned()
            .collect();
        // Refractory shorter than the gap so repeated symbols separate,
        // longer than the detector hop so one tone stays one event.
        let refractory = self.gap.mul_f64(0.7).max(Duration::from_millis(30));
        let mut tones = collapse_events(&mine, refractory);
        tones.sort_by_key(|e| e.time);
        tones.into_iter().map(|e| e.slot).collect()
    }

    /// Pack bytes into symbols (big-endian bit order). Requires a
    /// power-of-two alphabet.
    pub fn bytes_to_symbols(&self, bytes: &[u8]) -> Result<Vec<usize>, MelodyError> {
        if !self.alphabet.is_power_of_two() {
            return Err(MelodyError::AlphabetNotPowerOfTwo(self.alphabet));
        }
        let bits = self.bits_per_symbol() as usize;
        let mut symbols = Vec::with_capacity(bytes.len() * 8 / bits + 1);
        let mut acc: u32 = 0;
        let mut nbits = 0usize;
        for &b in bytes {
            acc = (acc << 8) | b as u32;
            nbits += 8;
            while nbits >= bits {
                nbits -= bits;
                symbols.push(((acc >> nbits) as usize) & (self.alphabet - 1));
            }
        }
        if nbits > 0 {
            // Pad the tail with zero bits.
            symbols.push(((acc << (bits - nbits)) as usize) & (self.alphabet - 1));
        }
        Ok(symbols)
    }

    /// Unpack symbols back into bytes (inverse of
    /// [`Self::bytes_to_symbols`]; trailing pad bits are discarded).
    pub fn symbols_to_bytes(&self, symbols: &[usize]) -> Result<Vec<u8>, MelodyError> {
        if !self.alphabet.is_power_of_two() {
            return Err(MelodyError::AlphabetNotPowerOfTwo(self.alphabet));
        }
        for &s in symbols {
            if s >= self.alphabet {
                return Err(MelodyError::SymbolOutOfRange {
                    symbol: s,
                    alphabet: self.alphabet,
                });
            }
        }
        let bits = self.bits_per_symbol() as usize;
        let mut bytes = Vec::with_capacity(symbols.len() * bits / 8);
        let mut acc: u32 = 0;
        let mut nbits = 0usize;
        for &s in symbols {
            acc = (acc << bits) | s as u32;
            nbits += bits;
            if nbits >= 8 {
                nbits -= 8;
                bytes.push((acc >> nbits) as u8);
            }
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdn_audio::signal::Window;
    use crate::controller::MdnController;
    use crate::freqplan::FrequencyPlan;
    use mdn_acoustics::medium::Pos;
    use mdn_acoustics::mic::Microphone;

    const SR: u32 = 44_100;

    fn setup(alphabet: usize) -> (Scene, SoundingDevice, MdnController, MelodyCodec) {
        // 60 Hz spacing: melody symbols repeat quickly and adjacent-slot
        // margins matter (see the relay spacing guidance).
        let mut plan = FrequencyPlan::new(600.0, 600.0 + 60.0 * (alphabet + 1) as f64, 60.0);
        let set = plan.allocate("dev", alphabet).unwrap();
        let scene = Scene::quiet(SR);
        let dev = SoundingDevice::new("dev", set.clone(), Pos::ORIGIN);
        let mut ctl = MdnController::new(Microphone::measurement(), Pos::new(0.4, 0.0, 0.0));
        ctl.bind_device("dev", set);
        (scene, dev, ctl, MelodyCodec::new(alphabet))
    }

    #[test]
    fn melody_roundtrip_over_the_air() {
        let (mut scene, mut dev, ctl, codec) = setup(8);
        let symbols = vec![3usize, 1, 4, 1, 5];
        let end = codec
            .emit(&mut dev, &mut scene, &symbols, Duration::from_millis(100))
            .unwrap();
        let events = ctl.listen(&scene, Window::from_start(end + Duration::from_millis(100)));
        assert_eq!(codec.decode(&events, "dev"), symbols);
    }

    #[test]
    fn repeated_symbols_survive_the_gap() {
        let (mut scene, mut dev, ctl, codec) = setup(4);
        let symbols = vec![2usize, 2, 2, 0, 0];
        let end = codec
            .emit(&mut dev, &mut scene, &symbols, Duration::from_millis(50))
            .unwrap();
        let events = ctl.listen(&scene, Window::from_start(end + Duration::from_millis(100)));
        assert_eq!(codec.decode(&events, "dev"), symbols);
    }

    #[test]
    fn melody_is_one_mp_frame() {
        let (mut scene, mut dev, _, codec) = setup(8);
        codec
            .emit(&mut dev, &mut scene, &[1, 2, 3], Duration::ZERO)
            .unwrap();
        assert_eq!(
            dev.mp_frames_sent, 1,
            "a melody should be one PlaySequence frame"
        );
        assert_eq!(scene.num_emissions(), 3, "…rendered as three tones");
    }

    #[test]
    fn out_of_alphabet_symbol_is_rejected() {
        let (mut scene, mut dev, _, codec) = setup(4);
        let err = codec
            .emit(&mut dev, &mut scene, &[0, 4], Duration::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            EmitError::BadSlot {
                slot: 4,
                set_len: 4
            }
        );
        assert_eq!(scene.num_emissions(), 0);
    }

    #[test]
    fn bytes_roundtrip_through_symbols() {
        for alphabet in [2usize, 4, 16] {
            let codec = MelodyCodec::new(alphabet);
            let payload = b"MDN!";
            let symbols = codec.bytes_to_symbols(payload).unwrap();
            let back = codec.symbols_to_bytes(&symbols).unwrap();
            assert_eq!(&back[..payload.len()], payload, "alphabet {alphabet}");
        }
    }

    #[test]
    fn byte_transport_over_the_air() {
        let (mut scene, mut dev, ctl, codec) = setup(16);
        let payload = b"OK";
        let symbols = codec.bytes_to_symbols(payload).unwrap();
        let end = codec
            .emit(&mut dev, &mut scene, &symbols, Duration::from_millis(50))
            .unwrap();
        let events = ctl.listen(&scene, Window::from_start(end + Duration::from_millis(100)));
        let decoded = codec.decode(&events, "dev");
        let bytes = codec.symbols_to_bytes(&decoded).unwrap();
        assert_eq!(&bytes[..payload.len()], payload);
    }

    #[test]
    fn throughput_matches_the_acoustic_regime() {
        // Related work cited by the paper: ~20 bytes per ~6 s over one
        // acoustic hop. A 16-symbol alphabet at the default timing gives
        // the same order of magnitude.
        let codec = MelodyCodec::new(16);
        let bps = codec.bits_per_second();
        assert!(
            (10.0..=100.0).contains(&bps),
            "throughput {bps} bit/s out of regime"
        );
        let secs_for_20_bytes = 20.0 * 8.0 / bps;
        assert!(
            (1.0..=16.0).contains(&secs_for_20_bytes),
            "20 bytes in {secs_for_20_bytes} s"
        );
    }

    #[test]
    fn non_power_of_two_alphabet_rejects_bytes() {
        let codec = MelodyCodec::new(6);
        assert_eq!(
            codec.bytes_to_symbols(b"x"),
            Err(MelodyError::AlphabetNotPowerOfTwo(6))
        );
    }

    #[test]
    fn decode_ignores_other_devices_and_foreign_slots() {
        let codec = MelodyCodec::new(4);
        let mk = |device: &str, slot: usize, ms: u64| MdnEvent {
            device: device.into(),
            slot,
            time: Duration::from_millis(ms),
            freq_hz: 0.0,
            magnitude: 0.1,
        };
        let events = vec![
            mk("dev", 1, 0),
            mk("other", 2, 100),
            mk("dev", 9, 200),
            mk("dev", 3, 300),
        ];
        assert_eq!(codec.decode(&events, "dev"), vec![1, 3]);
    }
}
