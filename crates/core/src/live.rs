//! Live (streaming) listening.
//!
//! Everything else in this crate analyzes captured buffers after the fact —
//! fine for experiments, but a deployed MDN controller listens to an
//! endless microphone stream and must produce events as tones happen. A
//! [`LiveListener`] runs the detector on its own thread: audio arrives in
//! arbitrary-sized chunks over a `crossbeam` channel, a carry-over buffer
//! preserves detector frames across chunk boundaries, and decoded events
//! accumulate behind a `parking_lot` mutex for the control thread to drain.
//!
//! In simulation the stream comes from a
//! [`SceneCursor`](mdn_acoustics::scene::SceneCursor): [`LiveListener::pump`]
//! renders the next window of the scene into the cursor's reusable scratch
//! buffer and feeds it to the worker, so an endless closed loop costs
//! O(chunk) per tick instead of re-rendering the scene from zero.

use crate::controller::MdnEvent;
use crate::detector::ToneDetector;
use crate::freqplan::FrequencySet;
use crossbeam::channel::{bounded, Sender};
use mdn_acoustics::scene::SceneCursor;
use mdn_audio::signal::duration_to_samples;
use mdn_audio::Signal;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The listener's worker thread panicked; the payload is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenerPanic(pub String);

impl fmt::Display for ListenerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "live listener worker panicked: {}", self.0)
    }
}

impl std::error::Error for ListenerPanic {}

/// Handle to a running live listener.
///
/// Dropping the handle (or calling [`LiveListener::finish`]) closes the
/// audio channel; the worker drains what is queued and exits.
#[derive(Debug)]
pub struct LiveListener {
    tx: Option<Sender<Signal>>,
    worker: Option<JoinHandle<()>>,
    events: Arc<Mutex<Vec<MdnEvent>>>,
    sample_rate: u32,
    samples_sent: u64,
}

impl LiveListener {
    /// Start a listener for `device`'s frequency `set` at `sample_rate`.
    /// `queue_depth` bounds how many chunks may be in flight (backpressure
    /// for the capture thread).
    pub fn start(
        device: impl Into<String>,
        set: FrequencySet,
        sample_rate: u32,
        queue_depth: usize,
    ) -> Self {
        let device = device.into();
        let detector = ToneDetector::new(set.freqs.clone());
        let (tx, rx) = bounded::<Signal>(queue_depth.max(1));
        let events: Arc<Mutex<Vec<MdnEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);

        // Frames are `frame` long with `hop` spacing. The carry-over keeps
        // a little more than one full frame so that (a) a tone spanning a
        // chunk boundary lands in a complete frame, and (b) the detector's
        // neighbouring-frame gate still sees the loud frame next to a
        // boundary frame (otherwise tone-tail splatter ghosts appear at
        // chunk edges). Re-analyzed overlap frames produce duplicate
        // events at identical times, which `collapse_events` merges.
        let frame = duration_to_samples(detector.config().frame, sample_rate).max(1);
        let hop = duration_to_samples(detector.config().hop, sample_rate).max(1);
        let carry_len = (frame + 2 * hop).div_ceil(hop) * hop;

        let worker = std::thread::spawn(move || {
            let mut carry = Signal::empty(sample_rate);
            // Absolute sample index of carry[0] in the stream.
            let mut carry_start: u64 = 0;
            // Absolute sample index up to which frame decisions are final.
            // Each frame is *decided exactly once*, at the first analysis
            // where both its neighbouring frames are present in the buffer
            // (the detector's splatter gate looks one frame to each side).
            // The newest complete frame is therefore deferred by one hop
            // and decided on the next chunk; a flush pass decides the tail
            // when the stream closes.
            let mut decided_until: Option<u64> = None;
            let emit = |sink: &Mutex<Vec<MdnEvent>>,
                        device: &str,
                        carry_start: u64,
                        obs: &crate::detector::ToneObservation| {
                let offset = Duration::from_secs_f64(carry_start as f64 / sample_rate as f64);
                sink.lock().push(MdnEvent {
                    device: device.to_string(),
                    slot: obs.candidate,
                    time: offset + obs.time,
                    freq_hz: obs.freq_hz,
                    magnitude: obs.magnitude,
                });
            };
            for chunk in rx {
                assert_eq!(
                    chunk.sample_rate(),
                    sample_rate,
                    "live chunks must match the listener's sample rate"
                );
                let mut buf = carry.clone();
                buf.append(&chunk);
                // Frames fully decidable now: all complete frames except
                // the newest (which lacks its right-context frame).
                let complete = if buf.len() >= frame { (buf.len() - frame) / hop + 1 } else { 0 };
                let decide_local = if complete >= 2 { Some(((complete - 2) * hop) as u64) } else { None };
                if let Some(d) = decide_local {
                    // Detect over the joined buffer; event times are
                    // relative to buf[0] = stream position carry_start.
                    for obs in detector.detect(&buf) {
                        let frame_abs = carry_start
                            + (obs.time.as_secs_f64() * sample_rate as f64).round() as u64;
                        let already = decided_until.is_some_and(|w| frame_abs <= w);
                        if !already && frame_abs <= carry_start + d {
                            emit(&sink, &device, carry_start, &obs);
                        }
                    }
                    decided_until =
                        Some(decided_until.map_or(carry_start + d, |w| w.max(carry_start + d)));
                }
                // Consume whole hops, keeping at least `carry_len` behind,
                // so the overlap re-analysis reproduces the same frame
                // grid and undecided frames keep their left context.
                let keep_from = if buf.len() > carry_len {
                    (buf.len() - carry_len) / hop * hop
                } else {
                    0
                };
                carry = buf.slice(keep_from, buf.len());
                carry_start += keep_from as u64;
            }
            // Stream closed: decide the deferred tail (no right context —
            // exactly like the end of a batch capture).
            for obs in detector.detect(&carry) {
                let frame_abs =
                    carry_start + (obs.time.as_secs_f64() * sample_rate as f64).round() as u64;
                if decided_until.is_none_or(|w| frame_abs > w) {
                    emit(&sink, &device, carry_start, &obs);
                }
            }
        });

        Self {
            tx: Some(tx),
            worker: Some(worker),
            events,
            sample_rate,
            samples_sent: 0,
        }
    }

    /// The stream's sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Total stream time pushed so far.
    pub fn pushed(&self) -> Duration {
        Duration::from_secs_f64(self.samples_sent as f64 / self.sample_rate as f64)
    }

    /// Push one captured chunk (blocks when the queue is full —
    /// backpressure toward the capture side).
    ///
    /// A dead worker (it panicked) makes this a no-op; the panic surfaces
    /// from [`Self::finish`].
    ///
    /// # Panics
    /// Panics if called after [`Self::finish`], or if the chunk's sample
    /// rate differs from the listener's.
    pub fn push(&mut self, chunk: Signal) {
        assert_eq!(
            chunk.sample_rate(),
            self.sample_rate,
            "chunk sample rate mismatch"
        );
        let len = chunk.len() as u64;
        // A send error means the worker hung up (panicked); swallow it
        // here — finish() reports the panic properly. Only chunks the
        // worker actually accepted count toward `pushed()`: a rejected
        // chunk was never part of the analyzed stream, and inflating the
        // counter would misreport how much audio was listened to.
        if self
            .tx
            .as_ref()
            .expect("push after finish")
            .send(chunk)
            .is_ok()
        {
            self.samples_sent += len;
        }
    }

    /// Render the next `len` of the cursor's scene and feed it to the
    /// worker — the glue between the windowed scene renderer and the
    /// streaming detector. The cursor reuses its scratch buffer, so each
    /// tick renders only `len` of audio no matter how much stream time has
    /// already elapsed (only the channel send copies the chunk out).
    ///
    /// # Panics
    /// Panics if the cursor's scene sample rate differs from the
    /// listener's, or after [`Self::finish`].
    pub fn pump(&mut self, cursor: &mut SceneCursor<'_>, len: Duration) {
        let chunk = cursor.advance(len).clone();
        self.push(chunk);
    }

    /// Take the events decoded so far (deduplication across overlapping
    /// frames is the consumer's job, exactly as for batch listening — use
    /// [`crate::controller::collapse_events`]).
    pub fn drain_events(&self) -> Vec<MdnEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Close the stream and wait for the worker to finish analyzing
    /// everything queued. Returns all remaining events, or the worker's
    /// panic payload if it died mid-stream.
    pub fn finish(mut self) -> Result<Vec<MdnEvent>, ListenerPanic> {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            if let Err(payload) = worker.join() {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked with non-string payload".to_string());
                return Err(ListenerPanic(msg));
            }
        }
        Ok(self.drain_events())
    }
}

impl Drop for LiveListener {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::collapse_events;
    use crate::encoder::SoundingDevice;
    use crate::freqplan::FrequencyPlan;
    use mdn_acoustics::medium::Pos;
    use mdn_acoustics::scene::Scene;

    const SR: u32 = 44_100;

    fn scene_with_tones() -> (Scene, FrequencySet, Vec<(usize, Duration)>) {
        let mut plan = FrequencyPlan::new(700.0, 1500.0, 60.0);
        let set = plan.allocate("dev", 4).unwrap();
        let mut scene = Scene::quiet(SR);
        let mut dev = SoundingDevice::new("dev", set.clone(), Pos::ORIGIN);
        let tones = vec![
            (1usize, Duration::from_millis(150)),
            (3, Duration::from_millis(600)),
            (0, Duration::from_millis(1050)),
        ];
        for &(slot, at) in &tones {
            dev.emit_slot(&mut scene, slot, at, Duration::from_millis(100)).unwrap();
        }
        (scene, set, tones)
    }

    fn stream_and_collect(chunk_ms: u64) -> Vec<MdnEvent> {
        let (scene, set, _) = scene_with_tones();
        let full = scene.render_at(Pos::new(0.4, 0.0, 0.0), Duration::from_millis(1400));
        let mut listener = LiveListener::start("dev", set, SR, 4);
        let chunk_len = duration_to_samples(Duration::from_millis(chunk_ms), SR);
        let mut start = 0;
        while start < full.len() {
            let end = (start + chunk_len).min(full.len());
            listener.push(full.slice(start, end));
            start = end;
        }
        let events = listener.finish().expect("worker healthy");
        collapse_events(&events, Duration::from_millis(80))
    }

    #[test]
    fn live_stream_decodes_all_tones() {
        let events = stream_and_collect(200);
        let decoded: Vec<usize> = events.iter().map(|e| e.slot).collect();
        assert_eq!(decoded, vec![1, 3, 0], "events: {events:?}");
    }

    #[test]
    fn tiny_chunks_spanning_frames_still_decode() {
        // 10 ms chunks are much shorter than the 50 ms analysis frame; the
        // carry buffer must stitch them together.
        let events = stream_and_collect(10);
        let decoded: Vec<usize> = events.iter().map(|e| e.slot).collect();
        assert_eq!(decoded, vec![1, 3, 0], "events: {events:?}");
    }

    #[test]
    fn event_times_are_stream_absolute() {
        let events = stream_and_collect(137); // awkward chunk size on purpose
        assert_eq!(events.len(), 3);
        let expect = [0.15f64, 0.6, 1.05];
        for (e, &want) in events.iter().zip(&expect) {
            let got = e.time.as_secs_f64();
            assert!((got - want).abs() < 0.08, "event at {got}, expected ≈{want}");
        }
    }

    #[test]
    fn matches_batch_detection() {
        let (scene, set, _) = scene_with_tones();
        let full = scene.render_at(Pos::new(0.4, 0.0, 0.0), Duration::from_millis(1400));
        // Batch.
        let det = ToneDetector::new(set.freqs.clone());
        let batch: Vec<usize> = collapse_events(
            &det.detect(&full)
                .into_iter()
                .map(|o| MdnEvent {
                    device: "dev".into(),
                    slot: o.candidate,
                    time: o.time,
                    freq_hz: o.freq_hz,
                    magnitude: o.magnitude,
                })
                .collect::<Vec<_>>(),
            Duration::from_millis(80),
        )
        .iter()
        .map(|e| e.slot)
        .collect();
        // Live.
        let live: Vec<usize> = stream_and_collect(250).iter().map(|e| e.slot).collect();
        assert_eq!(batch, live);
    }

    #[test]
    fn drain_mid_stream_then_finish() {
        let (scene, set, _) = scene_with_tones();
        let full = scene.render_at(Pos::new(0.4, 0.0, 0.0), Duration::from_millis(1400));
        let mut listener = LiveListener::start("dev", set, SR, 4);
        let half = full.len() / 2;
        listener.push(full.slice(0, half));
        // Give the worker a moment, then drain what exists so far.
        std::thread::sleep(Duration::from_millis(50));
        let early = listener.drain_events();
        listener.push(full.slice(half, full.len()));
        let late = listener.finish().expect("worker healthy");
        let mut all = early;
        all.extend(late);
        let decoded: Vec<usize> = collapse_events(&all, Duration::from_millis(80))
            .iter()
            .map(|e| e.slot)
            .collect();
        assert_eq!(decoded, vec![1, 3, 0]);
    }

    #[test]
    fn cursor_pump_matches_chunked_stream() {
        // The closed-loop path (SceneCursor::advance → pump) must decode
        // exactly what pushing pre-rendered slices of the full render does.
        let (scene, set, _) = scene_with_tones();
        let mut listener = LiveListener::start("dev", set, SR, 4);
        let mut cursor = scene.cursor(Pos::new(0.4, 0.0, 0.0));
        let total = Duration::from_millis(1400);
        while cursor.position() < total {
            listener.pump(&mut cursor, Duration::from_millis(200));
        }
        assert_eq!(listener.pushed(), total);
        let events = listener.finish().expect("worker healthy");
        let decoded: Vec<usize> = collapse_events(&events, Duration::from_millis(80))
            .iter()
            .map(|e| e.slot)
            .collect();
        assert_eq!(decoded, vec![1, 3, 0], "events: {events:?}");
    }

    #[test]
    fn silence_stream_is_quiet() {
        let mut plan = FrequencyPlan::new(700.0, 1500.0, 60.0);
        let set = plan.allocate("dev", 4).unwrap();
        let mut listener = LiveListener::start("dev", set, SR, 2);
        for _ in 0..5 {
            listener.push(Signal::silence(Duration::from_millis(100), SR));
        }
        assert!(listener.finish().expect("worker healthy").is_empty());
    }

    #[test]
    #[should_panic(expected = "sample rate mismatch")]
    fn wrong_rate_chunk_panics() {
        let mut plan = FrequencyPlan::new(700.0, 1500.0, 60.0);
        let set = plan.allocate("dev", 2).unwrap();
        let mut listener = LiveListener::start("dev", set, SR, 2);
        listener.push(Signal::silence(Duration::from_millis(10), 48_000));
    }

    #[test]
    fn worker_panic_surfaces_as_error_from_finish() {
        // Regression: a panicking worker used to be swallowed (push's
        // `send(..).expect(..)` crashed the capture thread with an
        // unrelated message, and Drop ignored the join result). Trip the
        // worker's own sample-rate assertion by forging the handle's
        // recorded rate, so push's front-door check passes but the
        // worker's invariant is violated.
        let mut plan = FrequencyPlan::new(700.0, 1500.0, 60.0);
        let set = plan.allocate("dev", 2).unwrap();
        let mut listener = LiveListener::start("dev", set, SR, 2);
        // Forge the handle's rate so push's front-door check passes but
        // the worker's invariant (chunks match ITS rate) is violated.
        listener.sample_rate = 48_000;
        listener.push(Signal::silence(Duration::from_millis(10), 48_000));
        let err = listener.finish().expect_err("worker must have panicked");
        assert!(
            err.0.contains("sample rate"),
            "unexpected payload: {}",
            err.0
        );
        assert!(err.to_string().contains("worker panicked"));
    }

    #[test]
    fn dead_worker_does_not_inflate_pushed() {
        // Regression: `push` used to count a chunk's samples before the
        // send, so chunks dropped on the floor after the worker died still
        // inflated `pushed()`. Kill the worker with a poison chunk, then
        // verify further pushes are not counted.
        let mut plan = FrequencyPlan::new(700.0, 1500.0, 60.0);
        let set = plan.allocate("dev", 2).unwrap();
        let mut listener = LiveListener::start("dev", set, SR, 2);
        listener.push(Signal::silence(Duration::from_millis(100), SR));
        listener.sample_rate = 48_000;
        // Poison: passes the handle's (forged) front-door check, trips the
        // worker's own invariant. Whether this chunk is counted depends on
        // when the worker dies, so measure after the hangup is definite.
        listener.push(Signal::silence(Duration::from_millis(10), 48_000));
        let _ = listener.worker.as_ref().map(|w| {
            // Wait for the worker to actually die so the channel is closed.
            while !w.is_finished() {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let before = listener.pushed();
        listener.push(Signal::silence(Duration::from_millis(500), 48_000));
        assert_eq!(
            listener.pushed(),
            before,
            "rejected chunk must not count as pushed"
        );
        listener.finish().expect_err("worker must have panicked");
    }
}
