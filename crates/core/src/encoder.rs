//! The active sound path: device event → Music Protocol frame → speaker →
//! acoustic scene.
//!
//! A [`SoundingDevice`] models one paper testbed unit: a switch (or server)
//! that owns a [`FrequencySet`], marshals MP messages to its Raspberry Pi
//! (the frame is genuinely encoded and decoded — wire bugs can't hide), and
//! plays the resulting tone into the shared [`Scene`] from its position.

use crate::freqplan::FrequencySet;
use mdn_acoustics::medium::Pos;
use mdn_acoustics::scene::Scene;
use mdn_acoustics::speaker::{Speaker, SpeakerError, ToneRequest};
use mdn_proto::mp::{MpMessage, MpTone, MpToneError};
use std::time::Duration;

/// Default tone duration: the paper's ~50 ms analysis window.
pub const DEFAULT_TONE: Duration = Duration::from_millis(50);

/// Default emission level, dB SPL at 1 m — comfortably above the paper's
/// 30 dB floor, below conversation level.
pub const DEFAULT_LEVEL_DB: f64 = 65.0;

/// Errors from the emission path.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitError {
    /// The set-local slot index does not exist.
    BadSlot {
        /// Requested local slot.
        slot: usize,
        /// Size of the device's set.
        set_len: usize,
    },
    /// The speaker refused the tone.
    Speaker(SpeakerError),
    /// The requested tone does not fit the Music Protocol wire encoding.
    Tone(MpToneError),
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::BadSlot { slot, set_len } => {
                write!(f, "slot {slot} out of range for a {set_len}-tone set")
            }
            EmitError::Speaker(e) => write!(f, "speaker: {e}"),
            EmitError::Tone(e) => write!(f, "tone: {e}"),
        }
    }
}

impl std::error::Error for EmitError {}

impl From<SpeakerError> for EmitError {
    fn from(e: SpeakerError) -> Self {
        EmitError::Speaker(e)
    }
}

impl From<MpToneError> for EmitError {
    fn from(e: MpToneError) -> Self {
        EmitError::Tone(e)
    }
}

/// One sound-capable device: a frequency set, a speaker, a position, and an
/// MP sequence counter.
#[derive(Debug, Clone)]
pub struct SoundingDevice {
    /// Device name (also used as the scene emission label).
    pub name: String,
    /// The device's disjoint tone slots.
    pub set: FrequencySet,
    /// The attached speaker.
    pub speaker: Speaker,
    /// Where the speaker sits.
    pub pos: Pos,
    /// Default emission level in dB SPL.
    pub level_db: f64,
    next_seq: u16,
    /// Every MP frame "sent to the Pi", for tests and byte accounting.
    pub mp_frames_sent: u64,
    /// Total MP bytes marshaled.
    pub mp_bytes_sent: u64,
}

impl SoundingDevice {
    /// Build a device with the cheap testbed speaker and default level.
    pub fn new(name: impl Into<String>, set: FrequencySet, pos: Pos) -> Self {
        Self {
            name: name.into(),
            set,
            speaker: Speaker::cheap(),
            pos,
            level_db: DEFAULT_LEVEL_DB,
            next_seq: 0,
            mp_frames_sent: 0,
            mp_bytes_sent: 0,
        }
    }

    /// Emit the tone for set-local `slot` into `scene` at `start`, for
    /// `duration`, via the full MP marshal→unmarshal→speaker path.
    pub fn emit_slot(
        &mut self,
        scene: &mut Scene,
        slot: usize,
        start: Duration,
        duration: Duration,
    ) -> Result<(), EmitError> {
        if slot >= self.set.len() {
            return Err(EmitError::BadSlot {
                slot,
                set_len: self.set.len(),
            });
        }
        let freq_hz = self.set.freq(slot);
        // Marshal the MP frame exactly as the modified Zodiac firmware
        // would, then decode it on the "Pi" side.
        let msg = MpMessage::PlayTone {
            seq: self.next_seq,
            tone: MpTone::try_from_units(freq_hz, duration, self.level_db)?,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        let frame = msg.encode();
        self.mp_frames_sent += 1;
        self.mp_bytes_sent += frame.len() as u64;
        let decoded = MpMessage::decode(frame).expect("self-encoded MP frame decodes");
        let MpMessage::PlayTone { tone, .. } = decoded else {
            unreachable!("encoded a PlayTone");
        };
        // The Pi drives the speaker.
        let req = ToneRequest {
            freq_hz: tone.freq_hz(),
            duration: tone.duration(),
            level_spl: tone.intensity_db(),
        };
        let signal = self.speaker.play(req, scene.sample_rate())?;
        scene.add(self.pos, start, signal, self.name.clone());
        Ok(())
    }

    /// Emit with the default 50 ms duration.
    pub fn emit(
        &mut self,
        scene: &mut Scene,
        slot: usize,
        start: Duration,
    ) -> Result<(), EmitError> {
        self.emit_slot(scene, slot, start, DEFAULT_TONE)
    }

    /// Emit a *melody*: a timed sequence of slots as one Music Protocol
    /// `PlaySequence` frame (marshaled and unmarshaled like everything
    /// else), each tone followed by `gap` of silence. Returns the time at
    /// which the melody ends.
    pub fn emit_melody(
        &mut self,
        scene: &mut Scene,
        slots: &[usize],
        start: Duration,
        tone: Duration,
        gap: Duration,
    ) -> Result<Duration, EmitError> {
        if let Some(&bad) = slots.iter().find(|&&s| s >= self.set.len()) {
            return Err(EmitError::BadSlot {
                slot: bad,
                set_len: self.set.len(),
            });
        }
        let tones: Vec<(MpTone, Duration)> = slots
            .iter()
            .map(|&s| {
                Ok((
                    MpTone::try_from_units(self.set.freq(s), tone, self.level_db)?,
                    gap,
                ))
            })
            .collect::<Result<_, MpToneError>>()?;
        let msg = MpMessage::PlaySequence {
            seq: self.next_seq,
            tones,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        let frame = msg.encode();
        self.mp_frames_sent += 1;
        self.mp_bytes_sent += frame.len() as u64;
        let decoded = MpMessage::decode(frame).expect("self-encoded MP frame decodes");
        let MpMessage::PlaySequence { tones, .. } = decoded else {
            unreachable!("encoded a PlaySequence");
        };
        // The Pi plays the sequence back-to-back with the encoded gaps.
        let mut at = start;
        for (t, g) in tones {
            let req = ToneRequest {
                freq_hz: t.freq_hz(),
                duration: t.duration(),
                level_spl: t.intensity_db(),
            };
            let signal = self.speaker.play(req, scene.sample_rate())?;
            let produced = signal.duration();
            scene.add(self.pos, at, signal, self.name.clone());
            at += produced + g;
        }
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqplan::FrequencyPlan;
    use mdn_audio::spectral::Spectrum;

    const SR: u32 = 44_100;

    fn device() -> SoundingDevice {
        let mut plan = FrequencyPlan::new(500.0, 1000.0, 20.0);
        let set = plan.allocate("sw1", 5).unwrap();
        SoundingDevice::new("sw1", set, Pos::ORIGIN)
    }

    #[test]
    fn emitted_tone_lands_at_slot_frequency() {
        let mut dev = device();
        let mut scene = Scene::quiet(SR);
        dev.emit(&mut scene, 2, Duration::ZERO).unwrap();
        let heard = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(60));
        let spec = Spectrum::of(&heard);
        let peaks = spec.peaks(1e-4, 15.0);
        assert!(!peaks.is_empty());
        assert!(
            (peaks[0].freq_hz - dev.set.freq(2)).abs() < 10.0,
            "peak {}",
            peaks[0].freq_hz
        );
    }

    #[test]
    fn bad_slot_is_an_error() {
        let mut dev = device();
        let mut scene = Scene::quiet(SR);
        let err = dev.emit(&mut scene, 9, Duration::ZERO).unwrap_err();
        assert_eq!(
            err,
            EmitError::BadSlot {
                slot: 9,
                set_len: 5
            }
        );
        assert_eq!(scene.num_emissions(), 0);
    }

    #[test]
    fn mp_accounting_tracks_frames() {
        let mut dev = device();
        let mut scene = Scene::quiet(SR);
        dev.emit(&mut scene, 0, Duration::ZERO).unwrap();
        dev.emit(&mut scene, 1, Duration::from_millis(100)).unwrap();
        assert_eq!(dev.mp_frames_sent, 2);
        assert_eq!(dev.mp_bytes_sent, 32); // 16 bytes per PlayTone frame
        assert_eq!(scene.num_emissions(), 2);
    }

    #[test]
    fn sub_minimum_duration_is_stretched_by_speaker() {
        let mut dev = device();
        let mut scene = Scene::quiet(SR);
        dev.emit_slot(&mut scene, 0, Duration::ZERO, Duration::from_millis(5))
            .unwrap();
        let e = &scene.emissions()[0];
        // The cheap speaker stretches to its 30 ms floor.
        assert!((e.signal.duration().as_secs_f64() - 0.030).abs() < 0.002);
    }

    #[test]
    fn out_of_speaker_band_slot_fails_cleanly() {
        let mut plan = FrequencyPlan::new(16_000.0, 30_000.0, 100.0);
        let set = plan.allocate("hi", 20).unwrap();
        let mut dev = SoundingDevice::new("hi", set, Pos::ORIGIN);
        let mut scene = Scene::quiet(SR);
        // Slot frequencies above the cheap speaker's 15 kHz limit.
        let err = dev.emit(&mut scene, 0, Duration::ZERO).unwrap_err();
        assert!(matches!(
            err,
            EmitError::Speaker(SpeakerError::OutOfBand { .. })
        ));
    }

    #[test]
    fn unencodable_tone_is_an_error_not_a_panic() {
        let mut dev = device();
        dev.level_db = -3.0; // below the MP intensity encoding's floor
        let mut scene = Scene::quiet(SR);
        let err = dev.emit(&mut scene, 0, Duration::ZERO).unwrap_err();
        assert!(matches!(err, EmitError::Tone(_)), "got {err:?}");
        assert!(err.to_string().contains("intensity out of range"));
        assert_eq!(scene.num_emissions(), 0);
    }

    #[test]
    fn sequence_numbers_advance() {
        let mut dev = device();
        let mut scene = Scene::quiet(SR);
        for i in 0..3 {
            dev.emit(&mut scene, 0, Duration::from_millis(i * 100))
                .unwrap();
        }
        assert_eq!(dev.next_seq, 3);
    }
}
