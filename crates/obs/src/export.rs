//! Exporters: Prometheus text-format dump and JSON snapshot.
//!
//! Both walk the registry's name table once, load each atomic with a
//! relaxed read, and render. Neither pauses writers — exports are
//! point-in-time and safe to take while detection workers run.
//!
//! The [`Snapshot`] is the machine-readable form (same spirit as
//! `BENCH_detect.json`): flat maps keyed by the rendered sample name
//! (`name` or `name{k="v"}`), plus the journal tail. Counters and gauges
//! are deterministic for a deterministic scenario; histograms carry wall
//! time and are *not* — comparisons that need bit-exactness should stick
//! to [`Snapshot::counters`]. The JSON emitter is hand-rolled so this
//! crate stays dependency-free.

use crate::journal::JournalEvent;
use crate::registry::{bucket_upper_bound, Metric, MetricKey, Registry, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Point-in-time values of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 if none).
    pub max: u64,
    /// Mean of recorded values (0.0 if none).
    pub mean: f64,
    /// Occupied log₂ buckets as `(inclusive_upper_bound, count)` pairs,
    /// ascending; empty buckets are omitted.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the log₂ bucket the target rank lands in.
    ///
    /// The true value's bucket is exact, so the estimate is off by at
    /// most the bucket width; the top occupied bucket's upper edge is
    /// clamped to the recorded [`max`](Self::max), which makes
    /// `quantile(1.0)` return `max` exactly. Returns 0.0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0.0;
        for &(le, n) in &self.buckets {
            let next = cumulative + n as f64;
            if next >= rank {
                let lo = if le == 0 { 0 } else { le / 2 + 1 };
                let hi = le.min(self.max).max(lo);
                let frac = (rank - cumulative) / n as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cumulative = next;
        }
        self.max as f64
    }
}

/// A point-in-time JSON-serialisable view of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values keyed by rendered sample name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values keyed by rendered sample name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries keyed by rendered sample name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The journal tail, oldest first.
    pub journal: Vec<JournalEvent>,
    /// Events evicted from the journal ring.
    pub journal_dropped: u64,
}

/// Escape a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; clamp to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Serialise to pretty-printed JSON (two-space indent, stable key
    /// order — maps are `BTreeMap`s).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(k), json_f64(*v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, n)| format!("[{le}, {n}]"))
                .collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [{}]}}",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                json_f64(h.mean),
                buckets.join(", ")
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"journal\": [");
        first = true;
        for e in &self.journal {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"at_ms\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                json_f64(e.at.as_secs_f64() * 1e3),
                json_escape(&e.kind),
                json_escape(&e.detail)
            );
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });

        let _ = write!(out, "  \"journal_dropped\": {}\n}}", self.journal_dropped);
        out
    }
}

impl Registry {
    /// Take a point-in-time [`Snapshot`] (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let mut snap = Snapshot {
            journal: inner.journal.events(),
            journal_dropped: inner.journal.dropped(),
            ..Snapshot::default()
        };
        // Ring overflow must be visible in scrapes, not just in-process:
        // surface both drop counters as synthetic counter samples.
        snap.counters
            .insert("mdn_obs_journal_dropped_total".into(), inner.journal.dropped());
        snap.counters
            .insert("mdn_obs_trace_dropped_total".into(), inner.trace.dropped());
        let metrics = inner.metrics.lock().unwrap();
        for (key, metric) in metrics.iter() {
            let rendered = key.render();
            match metric {
                Metric::Counter(cell) => {
                    snap.counters.insert(rendered, cell.load(Ordering::Relaxed));
                }
                Metric::Gauge(cell) => {
                    snap.gauges
                        .insert(rendered, f64::from_bits(cell.load(Ordering::Relaxed)));
                }
                Metric::Histogram(cell) => {
                    let count = cell.count.load(Ordering::Relaxed);
                    let sum = cell.sum.load(Ordering::Relaxed);
                    let buckets: Vec<(u64, u64)> = (0..HISTOGRAM_BUCKETS)
                        .filter_map(|i| {
                            let n = cell.buckets[i].load(Ordering::Relaxed);
                            (n > 0).then(|| (bucket_upper_bound(i), n))
                        })
                        .collect();
                    snap.histograms.insert(
                        rendered,
                        HistogramSnapshot {
                            count,
                            sum,
                            max: cell.max.load(Ordering::Relaxed),
                            mean: if count == 0 {
                                0.0
                            } else {
                                sum as f64 / count as f64
                            },
                            buckets,
                        },
                    );
                }
            }
        }
        snap
    }

    /// Render the registry in the Prometheus text exposition format
    /// (empty string when disabled). Histograms emit cumulative
    /// `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let metrics = inner.metrics.lock().unwrap();
        let mut out = String::new();
        let mut last_family = None::<String>;
        for (key, metric) in metrics.iter() {
            let family = &key.name;
            if last_family.as_deref() != Some(family) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = Some(family.clone());
            }
            match metric {
                Metric::Counter(cell) => {
                    let _ = writeln!(out, "{} {}", key.render(), cell.load(Ordering::Relaxed));
                }
                Metric::Gauge(cell) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        key.render(),
                        f64::from_bits(cell.load(Ordering::Relaxed))
                    );
                }
                Metric::Histogram(cell) => {
                    let mut cumulative = 0u64;
                    for i in 0..HISTOGRAM_BUCKETS {
                        let n = cell.buckets[i].load(Ordering::Relaxed);
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            render_with_extra_label(key, "_bucket", "le", &le_bound(i)),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {cumulative}",
                        render_with_extra_label(key, "_bucket", "le", "+Inf"),
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_suffixed(key, "_sum"),
                        cell.sum.load(Ordering::Relaxed)
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_suffixed(key, "_count"),
                        cell.count.load(Ordering::Relaxed)
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE mdn_obs_journal_dropped_total counter");
        let _ = writeln!(
            out,
            "mdn_obs_journal_dropped_total {}",
            inner.journal.dropped()
        );
        let _ = writeln!(out, "# TYPE mdn_obs_trace_dropped_total counter");
        let _ = writeln!(out, "mdn_obs_trace_dropped_total {}", inner.trace.dropped());
        out
    }
}

fn le_bound(bucket: usize) -> String {
    if bucket >= 64 {
        "+Inf".to_string()
    } else {
        bucket_upper_bound(bucket).to_string()
    }
}

fn render_suffixed(key: &MetricKey, suffix: &str) -> String {
    let mut renamed = key.clone();
    renamed.name.push_str(suffix);
    renamed.render()
}

fn render_with_extra_label(key: &MetricKey, suffix: &str, k: &str, v: &str) -> String {
    let mut renamed = key.clone();
    renamed.name.push_str(suffix);
    renamed.labels.push((k.to_string(), v.to_string()));
    renamed.labels.sort();
    renamed.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden test: exact Prometheus text for a small fixed registry.
    #[test]
    fn prometheus_golden() {
        let reg = Registry::new();
        reg.counter("mdn_mp_acked_total", &[]).add(2);
        reg.counter("mdn_channel_frames_total", &[("dir", "to_switch")])
            .add(7);
        reg.counter("mdn_channel_frames_total", &[("dir", "to_controller")])
            .add(3);
        reg.gauge("mdn_queue_high_water", &[("queue", "sw1")]).set(5.0);
        let h = reg.histogram("mdn_stage_ns", &[("stage", "detect")]);
        h.record(3); // bucket le=3
        h.record(3);
        h.record(900); // bucket le=1023
        let expected = "\
# TYPE mdn_channel_frames_total counter
mdn_channel_frames_total{dir=\"to_controller\"} 3
mdn_channel_frames_total{dir=\"to_switch\"} 7
# TYPE mdn_mp_acked_total counter
mdn_mp_acked_total 2
# TYPE mdn_queue_high_water gauge
mdn_queue_high_water{queue=\"sw1\"} 5
# TYPE mdn_stage_ns histogram
mdn_stage_ns_bucket{le=\"3\",stage=\"detect\"} 2
mdn_stage_ns_bucket{le=\"1023\",stage=\"detect\"} 3
mdn_stage_ns_bucket{le=\"+Inf\",stage=\"detect\"} 3
mdn_stage_ns_sum{stage=\"detect\"} 906
mdn_stage_ns_count{stage=\"detect\"} 3
# TYPE mdn_obs_journal_dropped_total counter
mdn_obs_journal_dropped_total 0
# TYPE mdn_obs_trace_dropped_total counter
mdn_obs_trace_dropped_total 0
";
        assert_eq!(reg.prometheus(), expected);
    }

    /// Golden test: exact JSON for a small fixed registry.
    #[test]
    fn json_golden() {
        let reg = Registry::new();
        reg.counter("a_total", &[]).inc();
        reg.gauge("b", &[]).set(1.5);
        let h = reg.histogram("c_ns", &[]);
        h.record(10);
        reg.journal()
            .record(std::time::Duration::from_secs(1), "k", "d\"x\"");
        let expected = "\
{
  \"counters\": {
    \"a_total\": 1,
    \"mdn_obs_journal_dropped_total\": 0,
    \"mdn_obs_trace_dropped_total\": 0
  },
  \"gauges\": {
    \"b\": 1.5
  },
  \"histograms\": {
    \"c_ns\": {\"count\": 1, \"sum\": 10, \"max\": 10, \"mean\": 10.0, \"buckets\": [[15, 1]]}
  },
  \"journal\": [
    {\"at_ms\": 1000.0, \"kind\": \"k\", \"detail\": \"d\\\"x\\\"\"}
  ],
  \"journal_dropped\": 0
}";
        assert_eq!(reg.snapshot().to_json(), expected);
    }

    #[test]
    fn histogram_snapshot_mean_and_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("v_ns", &[]);
        h.record(0);
        h.record(1);
        h.record(1000);
        let snap = reg.snapshot();
        let hs = &snap.histograms["v_ns"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 1001);
        assert_eq!(hs.max, 1000);
        assert!((hs.mean - 1001.0 / 3.0).abs() < 1e-9);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (1023, 1)]);
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn empty_registry_exports_empty_objects() {
        let reg = Registry::new();
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        // The synthetic drop counters are always present in scrapes.
        assert!(json.contains("\"mdn_obs_journal_dropped_total\": 0"));
        assert!(reg.prometheus().contains("mdn_obs_trace_dropped_total 0"));
        let disabled = Registry::disabled();
        assert_eq!(disabled.prometheus(), "");
        assert_eq!(disabled.snapshot(), Snapshot::default());
    }

    #[test]
    fn dropped_counters_track_ring_overflow() {
        let reg = Registry::with_journal_capacity(2);
        for i in 0..5 {
            reg.journal()
                .record(std::time::Duration::from_secs(i), "k", "d");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["mdn_obs_journal_dropped_total"], 3);
        assert_eq!(snap.journal_dropped, 3);
        assert!(reg
            .prometheus()
            .contains("mdn_obs_journal_dropped_total 3"));

        let traced = Registry::with_trace(1);
        let sink = traced.trace();
        for seq in 0..4u64 {
            sink.record(crate::trace::TraceSpan {
                trace: crate::trace::TraceId::derive(0, 0, seq),
                kind: crate::trace::SpanKind::Schedule,
                from: std::time::Duration::ZERO,
                to: std::time::Duration::ZERO,
                wall_ns: 0,
                cell: 0,
                detail: String::new(),
            });
        }
        let snap = traced.snapshot();
        assert_eq!(snap.counters["mdn_obs_trace_dropped_total"], 3);
        assert!(traced.prometheus().contains("mdn_obs_trace_dropped_total 3"));
    }

    /// Regression: quantile interpolation against exact hand-computed
    /// values on the uniform distribution 1..=1000.
    #[test]
    fn quantile_interpolates_log2_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("q_ns", &[]);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let hs = reg.snapshot().histograms["q_ns"].clone();
        // rank 500 lands in bucket [256, 511] after 255 earlier values:
        // 256 + (500-255)/256 * (511-256) = 500.04296875 exactly.
        assert_eq!(hs.quantile(0.5), 500.04296875);
        // The top bucket's edge clamps to max, so p100 is exact.
        assert_eq!(hs.quantile(1.0), 1000.0);
        // p0 returns the lower edge of the first occupied bucket.
        assert_eq!(hs.quantile(0.0), 1.0);
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(hs.quantile(2.0), 1000.0);
        // rank 990 lands in the top bucket [512, min(1023, 1000)]:
        // 512 + (990-511)/489 * (1000-512) = 990.0981595...
        assert!((hs.quantile(0.99) - (512.0 + 479.0 / 489.0 * 488.0)).abs() < 1e-9);

        // Degenerate cases.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            mean: 0.0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile(0.5), 0.0);
        let zeros = reg.histogram("z_ns", &[]);
        zeros.record(0);
        zeros.record(0);
        assert_eq!(reg.snapshot().histograms["z_ns"].quantile(0.9), 0.0);
    }

    /// Golden test: JSON string escaping for label values carrying
    /// quotes, backslashes and newlines (alongside the Prometheus
    /// golden, which only meets quotes/backslashes via `MetricKey`).
    #[test]
    fn json_escaping_golden() {
        let reg = Registry::new();
        reg.counter("weird_total", &[("path", "a\"b\\c\nd")]).inc();
        let json = reg.snapshot().to_json();
        // MetricKey::render escapes `\` and `"` for Prometheus, then
        // json_escape re-escapes those backslashes and the raw newline.
        let expected_key = "weird_total{path=\\\"a\\\\\\\"b\\\\\\\\c\\nd\\\"}";
        assert!(json.contains(expected_key), "{json}");
        // The emitted document must survive a JSON parse round-trip of
        // its counter key: unescape and compare.
        let line = json
            .lines()
            .find(|l| l.contains("weird_total"))
            .unwrap()
            .trim();
        assert!(line.ends_with(": 1") || line.ends_with(": 1,"));
    }
}
