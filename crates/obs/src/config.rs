//! The workspace's shared typed validation error for configuration
//! structs.
//!
//! Every tunable struct (`DetectorConfig`, `SelfHealConfig`,
//! `BackoffConfig`, `StftConfig`, …) exposes a `validate()` returning
//! [`ConfigError`] instead of panicking deep inside a constructor, so a
//! bad scenario spec surfaces as a diagnosable error naming the field —
//! not an `assert!` backtrace. The type lives here because `mdn-obs` is
//! the one dependency-free crate every other layer already sits on.

use std::fmt;

/// A configuration value that fails its invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, dotted from the config root
    /// (`estimator.alpha`).
    pub field: &'static str,
    /// Why the value is rejected, including the value itself.
    pub reason: String,
}

impl ConfigError {
    /// A new error for `field`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        Self {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}
