//! The metrics registry and its atomic metric handles.
//!
//! A [`Registry`] is a named collection of metrics. Creating or looking up
//! a metric takes a short mutex on the name table; the returned handle is
//! an `Arc` straight to the metric's atomics, so the *update* path — the
//! only path that runs inside detection workers, render workers, or the
//! ARQ tick loop — is a single relaxed atomic op with no lock, no
//! allocation and no branch beyond the enabled check.
//!
//! A registry built with [`Registry::disabled`] hands out inert handles:
//! every update is a no-op (span timers skip even the clock read), and
//! exports are empty. Instrumented code therefore never needs an
//! `if enabled` of its own.

use crate::journal::Journal;
use crate::trace::TraceSink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket `i` counts values whose bit
/// length is `i`, i.e. values in `[2^(i-1), 2^i)` (bucket 0 holds zeros).
/// 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Default ring capacity of the registry's event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

/// Default ring capacity of the registry's trace sink (when tracing is
/// turned on via [`Registry::with_trace`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A metric's identity: family name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// `name` or `name{k="v",...}` — the Prometheus sample identity, also
    /// used as the flat key in JSON snapshots.
    pub(crate) fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

#[derive(Debug)]
pub(crate) enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

/// The atomics behind one histogram.
#[derive(Debug)]
pub struct HistogramCell {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a recorded value: its bit length.
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0` for the zero bucket).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter. Cheap to clone; all clones update
/// the same atomic. The default value is a disabled (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update (what disabled registries and
    /// un-attached components hold).
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Is this a live (registry-backed) handle?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A gauge holding an `f64` (stored as bits in an atomic). Last write
/// wins. The default value is a disabled (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `value` if it is currently lower — a high-water
    /// mark update, exact under concurrency.
    pub fn raise_to(&self, value: f64) {
        if let Some(cell) = &self.0 {
            let mut current = cell.load(Ordering::Relaxed);
            while f64::from_bits(current) < value {
                match cell.compare_exchange_weak(
                    current,
                    value.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket log₂ histogram of `u64` values (typically nanoseconds).
/// Recording is a handful of relaxed atomic ops — no allocation, no lock.
/// The default value is a disabled (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// A handle that ignores every update.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Start a span timer that records its elapsed nanoseconds here when
    /// dropped. Disabled handles return a timer that never reads the
    /// clock.
    #[inline]
    pub fn start_span(&self) -> crate::span::SpanTimer {
        crate::span::SpanTimer::new(self.clone())
    }

    /// Number of recorded values (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Is this a live (registry-backed) handle?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug)]
pub(crate) struct RegistryInner {
    pub(crate) metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    pub(crate) journal: Journal,
    pub(crate) trace: TraceSink,
}

/// The metric collection. Cloning is a cheap `Arc` clone; all clones see
/// the same metrics. See the [crate docs](crate) for the model.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub(crate) inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry with the default journal capacity.
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled registry whose event journal keeps the last `capacity`
    /// events. Tracing stays off (a disabled [`TraceSink`]).
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                journal: Journal::with_capacity(capacity),
                trace: TraceSink::disabled(),
            })),
        }
    }

    /// An enabled registry with causal tracing on: its [`TraceSink`]
    /// retains the last `trace_capacity` spans (the journal keeps its
    /// default capacity).
    pub fn with_trace(trace_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                journal: Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY),
                trace: TraceSink::with_capacity(trace_capacity),
            })),
        }
    }

    /// A registry whose every handle is a no-op and whose exports are
    /// empty — attach this to keep instrumented hot paths free.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// Is this registry recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the counter `name` with `labels`.
    ///
    /// # Panics
    /// Panics if the same name+labels already exists as another metric
    /// kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let key = MetricKey::new(name, labels);
        let mut metrics = inner.metrics.lock().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(cell) => Counter(Some(cell.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name` with `labels`.
    ///
    /// # Panics
    /// Panics if the same name+labels already exists as another metric
    /// kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::disabled();
        };
        let key = MetricKey::new(name, labels);
        let mut metrics = inner.metrics.lock().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Metric::Gauge(cell) => Gauge(Some(cell.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name` with `labels`.
    ///
    /// # Panics
    /// Panics if the same name+labels already exists as another metric
    /// kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let key = MetricKey::new(name, labels);
        let mut metrics = inner.metrics.lock().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())))
        {
            Metric::Histogram(cell) => Histogram(Some(cell.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// The per-stage wall-time histogram for `stage` (the target of
    /// [`span!`](crate::span!)): `mdn_stage_ns{stage="..."}`.
    pub fn stage_histogram(&self, stage: &str) -> Histogram {
        self.histogram("mdn_stage_ns", &[("stage", stage)])
    }

    /// Start a span timer for `stage`; elapsed nanoseconds are recorded
    /// into [`Registry::stage_histogram`] when the returned guard drops.
    /// Prefer resolving the histogram once ([`Registry::stage_histogram`]
    /// + [`Histogram::start_span`]) inside hot loops.
    pub fn span(&self, stage: &str) -> crate::span::SpanTimer {
        self.stage_histogram(stage).start_span()
    }

    /// The registry's bounded event journal (a disabled journal when the
    /// registry is disabled).
    pub fn journal(&self) -> Journal {
        match &self.inner {
            Some(inner) => inner.journal.clone(),
            None => Journal::disabled(),
        }
    }

    /// The registry's trace sink — disabled unless the registry was built
    /// with [`Registry::with_trace`], so un-traced runs pay one branch
    /// per would-be span.
    pub fn trace(&self) -> TraceSink {
        match &self.inner {
            Some(inner) => inner.trace.clone(),
            None => TraceSink::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[]);
        let b = reg.counter("hits_total", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn labels_distinguish_metrics() {
        let reg = Registry::new();
        let x = reg.counter("frames_total", &[("dir", "to_switch")]);
        let y = reg.counter("frames_total", &[("dir", "to_controller")]);
        x.inc();
        assert_eq!(x.get(), 1);
        assert_eq!(y.get(), 0);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let reg = Registry::new();
        let a = reg.counter("c_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("c_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x_total", &[]);
        let g = reg.gauge("x", &[]);
        let h = reg.histogram("x_ns", &[]);
        c.inc();
        g.set(3.0);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn gauge_set_and_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[]);
        g.set(4.0);
        g.raise_to(2.0);
        assert_eq!(g.get(), 4.0);
        g.raise_to(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", &[]);
        for v in [0u64, 1, 3, 900, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1928);
    }

    #[test]
    fn kind_collision_panics() {
        let reg = Registry::new();
        reg.counter("thing", &[]);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("thing", &[]);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("n_total", &[]);
        let h = reg.histogram("v_ns", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.sum(), 4 * (0..10_000u64).sum::<u64>());
    }
}
