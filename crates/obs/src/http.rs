//! A std-only HTTP scrape plane for a running experiment.
//!
//! The registry's exporters are in-process snapshots; a *live* soak needs
//! its metrics reachable over a socket, the way the planned OpenFlow
//! front-end serves control traffic — `TcpListener`, one thread per
//! connection, no dependencies. [`ObsServer`] serves three read-only
//! endpoints:
//!
//! * `GET /metrics` — the Prometheus text exposition
//!   ([`Registry::prometheus`]).
//! * `GET /snapshot` — the JSON snapshot ([`Snapshot::to_json`]).
//! * `GET /trace?since=N` — retained trace spans with all-time index
//!   `>= N` as Chrome trace-event JSON, plus an `X-Mdn-Trace-Next`
//!   header carrying the cursor to pass as the next `since` (omit
//!   `since` for the whole retained tail).
//!
//! Connections are short-lived (`Connection: close`); a scrape never
//! pauses writers because the exporters are already lock-light
//! point-in-time reads. Drop the [`ObsServerHandle`] (or call
//! [`ObsServerHandle::shutdown`]) to stop accepting.

use crate::registry::Registry;
use crate::trace::{chrome_trace_json, TraceSink};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an accepted connection may sit silent before it is reaped.
///
/// Scrapes are one short request–response exchange; anything that holds
/// a socket open without speaking (a slow-loris client, a dead peer) is
/// cut after this deadline so it cannot pin a handler thread forever.
const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// The scrape server: a registry + trace sink pair served over HTTP.
#[derive(Debug, Clone)]
pub struct ObsServer {
    registry: Registry,
    trace: TraceSink,
    client_timeout: Duration,
}

/// A running [`ObsServer`]: owns the accept thread. Shuts down on drop.
#[derive(Debug)]
pub struct ObsServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// A server over `registry` and its trace sink.
    pub fn new(registry: &Registry, trace: &TraceSink) -> Self {
        Self {
            registry: registry.clone(),
            trace: trace.clone(),
            client_timeout: DEFAULT_CLIENT_TIMEOUT,
        }
    }

    /// Replace the default read/write deadline on accepted connections.
    pub fn with_client_timeout(mut self, timeout: Duration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting. Each connection is handled on its own thread — the
    /// same shape as the planned thread-per-switch OpenFlow front-end.
    pub fn serve(self, addr: impl ToSocketAddrs) -> std::io::Result<ObsServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let server = self.clone();
                std::thread::spawn(move || {
                    let _ = server.handle(stream);
                });
            }
        });
        Ok(ObsServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Serve one connection: parse the request line, route, respond,
    /// close.
    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        // A client that connects and then goes silent must not pin this
        // thread: every read and write carries a deadline.
        stream.set_read_timeout(Some(self.client_timeout))?;
        stream.set_write_timeout(Some(self.client_timeout))?;
        let mut reader = BufReader::new(stream);
        let mut request_line = String::new();
        reader.read_line(&mut request_line)?;
        // Drain headers so well-behaved clients see a clean close.
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
                break;
            }
        }
        let mut stream = reader.into_inner();

        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("");
        if method != "GET" {
            return respond(&mut stream, 405, "text/plain", "method not allowed\n", &[]);
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        match path {
            "/metrics" => {
                let body = self.registry.prometheus();
                respond(
                    &mut stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                    &[],
                )
            }
            "/snapshot" => {
                let body = self.registry.snapshot().to_json();
                respond(&mut stream, 200, "application/json", &body, &[])
            }
            "/trace" => {
                // An absent cursor means "the whole retained tail"; a
                // present-but-unparseable one is a client error, not a
                // silent restart from zero.
                let since = match query.split('&').find_map(|kv| kv.strip_prefix("since=")) {
                    None => 0,
                    Some(v) => match v.parse::<u64>() {
                        Ok(n) => n,
                        Err(_) => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad since cursor: expected a non-negative integer\n",
                                &[],
                            );
                        }
                    },
                };
                let (next, spans) = self.trace.spans_since(since);
                let body = chrome_trace_json(&spans);
                let next_header = format!("X-Mdn-Trace-Next: {next}");
                respond(&mut stream, 200, "application/json", &body, &[&next_header])
            }
            _ => respond(&mut stream, 404, "text/plain", "not found\n", &[]),
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[&str],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

impl ObsServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. In-flight
    /// responses finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last local connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, TraceId, TraceSpan};
    use std::io::Read;
    use std::time::Duration;

    /// Minimal test client: one GET, full response as a string.
    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: mdn\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn body(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn serves_metrics_snapshot_and_trace() {
        let registry = Registry::new();
        registry.counter("mdn_http_test_total", &[]).add(3);
        let sink = TraceSink::with_capacity(8);
        sink.record(TraceSpan {
            trace: TraceId::derive(0, 0, 0),
            kind: SpanKind::Schedule,
            from: Duration::ZERO,
            to: Duration::from_millis(10),
            wall_ns: 5,
            cell: 0,
            detail: "c0-s0".into(),
        });
        let handle = ObsServer::new(&registry, &sink)
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(body(&metrics).contains("mdn_http_test_total 3"));

        let snapshot = get(addr, "/snapshot");
        assert!(snapshot.contains("application/json"));
        assert!(body(&snapshot).contains("\"mdn_http_test_total\": 3"));

        let trace = get(addr, "/trace?since=0");
        assert!(trace.contains("X-Mdn-Trace-Next: 1"), "{trace}");
        assert!(body(&trace).contains("\"name\": \"schedule\""));
        // Cursor past the tail: empty event list.
        let empty = get(addr, "/trace?since=1");
        assert!(!body(&empty).contains("\"ph\""));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        handle.shutdown();
    }

    #[test]
    fn malformed_trace_cursor_is_a_client_error() {
        let registry = Registry::new();
        let sink = TraceSink::with_capacity(8);
        sink.record(TraceSpan {
            trace: TraceId::derive(0, 0, 0),
            kind: SpanKind::Schedule,
            from: Duration::ZERO,
            to: Duration::from_millis(10),
            wall_ns: 5,
            cell: 0,
            detail: "c0-s0".into(),
        });
        let handle = ObsServer::new(&registry, &sink).serve("127.0.0.1:0").unwrap();
        let addr = handle.addr();

        for target in ["/trace?since=garbage", "/trace?since=-3", "/trace?since="] {
            let bad = get(addr, target);
            assert!(bad.starts_with("HTTP/1.1 400"), "{target}: {bad}");
            assert!(body(&bad).contains("bad since cursor"), "{bad}");
        }
        // The numeric path still pages through the ring.
        let good = get(addr, "/trace?since=0");
        assert!(good.starts_with("HTTP/1.1 200"), "{good}");
        assert!(good.contains("X-Mdn-Trace-Next: 1"), "{good}");
        // And an absent cursor still means "from the start".
        let whole = get(addr, "/trace");
        assert!(whole.starts_with("HTTP/1.1 200"), "{whole}");
        assert!(body(&whole).contains("\"name\": \"schedule\""));
        handle.shutdown();
    }

    #[test]
    fn silent_connection_is_reaped_while_metrics_stays_responsive() {
        let registry = Registry::new();
        registry.counter("mdn_http_loris_total", &[]).add(1);
        let handle = ObsServer::new(&registry, &TraceSink::disabled())
            .with_client_timeout(Duration::from_millis(150))
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();

        // A slow-loris client: connects, sends nothing.
        let mut silent = TcpStream::connect(addr).unwrap();

        // The scrape plane keeps answering while the loris dangles.
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(body(&metrics).contains("mdn_http_loris_total 1"));

        // The handler's read deadline fires and the server closes the
        // socket: our read sees EOF instead of blocking forever.
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = silent.read(&mut buf).unwrap();
        assert_eq!(n, 0, "server hung up on the silent connection");
        handle.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let registry = Registry::new();
        let handle = ObsServer::new(&registry, &TraceSink::disabled())
            .serve("127.0.0.1:0")
            .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"));
    }
}
