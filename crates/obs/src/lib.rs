//! # mdn-obs — the observability layer
//!
//! The paper's evaluation (§6, Figures 4–7) is entirely about *observed*
//! behaviour — detection accuracy under noise, in-band telemetry latency,
//! recovery timelines. This crate gives every other `mdn-*` crate one way
//! to report that behaviour:
//!
//! * [`registry`] — a lock-free metrics [`Registry`]: atomic counters,
//!   gauges and fixed-bucket log₂ latency histograms. Handles are cheap
//!   `Arc` clones, safe to update from `std::thread::scope` workers, and
//!   carry a no-op *disabled* mode so an uninstrumented hot path pays
//!   nothing (not even a clock read).
//! * [`span`] — lightweight span guards ([`span!`]) that record per-stage
//!   wall time into a histogram when dropped: the capture → window →
//!   Goertzel/FFT → local-max → event pipeline, MP encode → ARQ → ack
//!   round trips, per-queue testbed hops.
//! * [`export`] — a Prometheus text-format dump and a JSON
//!   [`Snapshot`](export::Snapshot) (same spirit as `BENCH_detect.json`).
//! * [`journal`] — a bounded ring-buffer event journal holding the last N
//!   health/fault transitions, with an overflow counter instead of
//!   unbounded growth.
//! * [`trace`] — causal tracing: a deterministic [`TraceId`] per
//!   scheduled tone, typed [`TraceSpan`]s for every pipeline hop it
//!   takes (including the negative `missed` → health-penalty → replan
//!   chain), collected in a bounded [`TraceSink`] and exportable as
//!   Chrome trace-event / Perfetto JSON.
//! * [`http`] — a std-only scrape server ([`ObsServer`]) putting
//!   `/metrics`, `/snapshot` and `/trace?since=` on a `TcpListener`, so
//!   a live soak can be watched from `curl`.
//!
//! ```
//! use mdn_obs::Registry;
//!
//! let registry = Registry::new();
//! let frames = registry.counter("mdn_detect_frames_total", &[]);
//! frames.add(3);
//! {
//!     let _span = mdn_obs::span!(registry, "detect.goertzel_bank");
//!     // ... hot work; wall time lands in the stage histogram on drop ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["mdn_detect_frames_total"], 3);
//! assert!(registry.prometheus().contains("mdn_detect_frames_total 3"));
//!
//! // Disabled mode: identical call sites, zero work.
//! let off = Registry::disabled();
//! off.counter("x_total", &[]).inc();
//! assert!(off.snapshot().counters.is_empty());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod http;
pub mod journal;
pub mod registry;
pub mod span;
pub mod trace;

pub use config::ConfigError;
pub use export::{HistogramSnapshot, Snapshot};
pub use http::{ObsServer, ObsServerHandle};
pub use journal::{Journal, JournalEvent};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::SpanTimer;
pub use trace::{chrome_trace_json, SpanKind, TraceId, TraceSink, TraceSpan};
