//! Span timers: scoped guards that record elapsed wall time into a
//! histogram when dropped.
//!
//! The guard reads the clock twice (on creation and on drop) and records
//! the elapsed nanoseconds into its target [`Histogram`]. When the
//! histogram handle is disabled the guard holds no start time at all —
//! it never touches the clock — so instrumented code pays nothing unless
//! a registry is attached.

use crate::registry::Histogram;
use std::time::Instant;

/// A scoped timer recording elapsed nanoseconds into a [`Histogram`] on
/// drop. Create one with [`Histogram::start_span`], [`crate::Registry::span`],
/// or the [`span!`](crate::span!) macro; bind it to `_span` (not `_`,
/// which drops immediately).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Start timing into `hist`. Disabled histograms yield a timer that
    /// skips the clock entirely.
    #[inline]
    pub fn new(hist: Histogram) -> Self {
        let start = hist.is_enabled().then(Instant::now);
        Self { hist, start }
    }

    /// Is this timer actually recording?
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hist.record(nanos);
        }
    }
}

/// Time the rest of the enclosing scope as pipeline stage `$stage`,
/// recording into `$registry`'s `mdn_stage_ns{stage=...}` histogram:
///
/// ```
/// # let registry = mdn_obs::Registry::new();
/// {
///     let _span = mdn_obs::span!(registry, "detect.goertzel_bank");
///     // ... stage work ...
/// }
/// assert_eq!(registry.stage_histogram("detect.goertzel_bank").count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($registry:expr, $stage:expr) => {
        $crate::Registry::span(&$registry, $stage)
    };
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn span_records_into_stage_histogram() {
        let reg = Registry::new();
        {
            let _span = crate::span!(reg, "stage.a");
            std::hint::black_box(0u64);
        }
        {
            let _span = reg.span("stage.a");
        }
        let h = reg.stage_histogram("stage.a");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn disabled_span_never_records_and_skips_clock() {
        let reg = Registry::disabled();
        let span = reg.span("stage.a");
        assert!(!span.is_enabled());
        drop(span);
        assert_eq!(reg.stage_histogram("stage.a").count(), 0);
    }

    #[test]
    fn hot_loop_reuses_resolved_histogram() {
        let reg = Registry::new();
        let h = reg.stage_histogram("stage.hot");
        for _ in 0..10 {
            let _span = h.start_span();
        }
        assert_eq!(h.count(), 10);
    }
}
