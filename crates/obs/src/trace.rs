//! Causal tracing: follow *one tone* through the whole pipeline.
//!
//! The metrics registry answers "how many / how fast on aggregate"; this
//! module answers "what happened to *this* tone". A [`TraceId`] is minted
//! when a tone emission is scheduled and propagated through every hop the
//! tone's evidence takes: scheduling, scene emission, capture-window
//! close, detection, controller decode — or, for a tone that was never
//! heard, the `missed` → health-penalty → replan chain an evacuation is
//! built from. Each hop records a [`TraceSpan`] carrying the hop's
//! *simulated-time* bounds (deterministic — bit-identical across thread
//! counts, like everything else in the pipeline) plus its *wall-clock*
//! cost (diagnostic only, explicitly excluded from the determinism
//! contract; see [`TraceSpan::deterministic_view`]).
//!
//! Spans land in a [`TraceSink`]: a bounded ring with a drop counter,
//! mirroring [`Journal`](crate::journal::Journal)'s inert-by-default
//! handle pattern — a disabled sink costs one branch per hop, safe to
//! leave wired through `std::thread::scope` hot paths. The retained tail
//! exports as Chrome trace-event JSON ([`TraceSink::to_chrome_json`]),
//! loadable in Perfetto / `chrome://tracing`, with one async
//! begin/end pair per span keyed by the trace id so concurrent tones
//! from different cells do not mis-nest.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A deterministic causal trace identifier for one scheduled tone.
///
/// Derived from `(cell, switch, seq)` with a splitmix64-style mixer — no
/// clock, no randomness — so the same scenario yields the same ids no
/// matter how many worker threads ran it, and a trace can be re-derived
/// from the schedule alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint the id for the `seq`-th scheduled emission of switch
    /// `switch` in cell `cell`. Pure function of its inputs; never zero.
    pub fn derive(cell: u64, switch: u64, seq: u64) -> Self {
        let mut z = cell
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ switch.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ 0xD6E8_FEB8_6659_FD93;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self(z | 1)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// The typed hops a tone's evidence takes through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Queue wait: from the schedule call to the emission firing.
    Schedule,
    /// Air time: the tone's signal playing in the scene.
    Emit,
    /// Window-close lag: from the end of the tone's signal to the
    /// capture-window boundary that makes it observable.
    WindowClose,
    /// Detect compute: the sharded capture + decode of the tone's window
    /// (wall cost is the whole window's listen, shared by its tones).
    Detect,
    /// The controller attributed a decoded event to the tone's device.
    Decode,
    /// Negative evidence: the tone was scheduled but never heard — the
    /// auto-close recorded at the expected-device ledger sweep.
    Missed,
    /// The miss was folded into the device's acoustic health score.
    HealthPenalty,
    /// The accumulated misses evacuated the tone's cell: live re-plan.
    Replan,
}

impl SpanKind {
    /// The span's wire name (`"schedule"`, `"emit"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Schedule => "schedule",
            SpanKind::Emit => "emit",
            SpanKind::WindowClose => "window_close",
            SpanKind::Detect => "detect",
            SpanKind::Decode => "decode",
            SpanKind::Missed => "missed",
            SpanKind::HealthPenalty => "health_penalty",
            SpanKind::Replan => "replan",
        }
    }
}

/// One recorded hop of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The tone this hop belongs to.
    pub trace: TraceId,
    /// Which pipeline hop this is.
    pub kind: SpanKind,
    /// Simulated-time start of the hop (deterministic).
    pub from: Duration,
    /// Simulated-time end of the hop (deterministic, `>= from`).
    pub to: Duration,
    /// Wall-clock cost of the hop in nanoseconds. Diagnostic only: wall
    /// time is **not** part of the determinism contract and differs run
    /// to run and thread count to thread count.
    pub wall_ns: u64,
    /// The acoustic cell the hop ran in (`usize::MAX` when unattributed).
    pub cell: usize,
    /// Free-form detail: the device name, decode/miss context, etc.
    pub detail: String,
}

impl TraceSpan {
    /// The span with its wall-clock field zeroed — everything that *is*
    /// covered by the determinism contract. Two runs of the same scenario
    /// (any thread counts) produce identical sequences of these.
    pub fn deterministic_view(&self) -> TraceSpan {
        TraceSpan {
            wall_ns: 0,
            ..self.clone()
        }
    }
}

#[derive(Debug)]
struct SinkState {
    ring: VecDeque<TraceSpan>,
    /// Index of the first retained span in the all-time sequence.
    first_index: u64,
    dropped: u64,
}

#[derive(Debug)]
struct SinkInner {
    state: Mutex<SinkState>,
    capacity: usize,
}

/// A bounded, shareable span sink. Cloning is a cheap `Arc` clone; the
/// default value is a disabled (no-op) sink, so instrumented code can
/// hold one unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<SinkInner>>);

impl TraceSink {
    /// A sink keeping the last `capacity` spans (capacity 0 keeps none
    /// but still counts drops).
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Some(Arc::new(SinkInner {
            state: Mutex::new(SinkState {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                first_index: 0,
                dropped: 0,
            }),
            capacity,
        })))
    }

    /// A sink that ignores every span — what disabled registries hand
    /// out, so un-traced runs pay one branch per hop.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Is this a live sink?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Append a span, evicting the oldest if the ring is full.
    pub fn record(&self, span: TraceSpan) {
        let Some(inner) = &self.0 else { return };
        let mut state = inner.state.lock().unwrap();
        if inner.capacity == 0 {
            state.dropped += 1;
            state.first_index += 1;
            return;
        }
        if state.ring.len() == inner.capacity {
            state.ring.pop_front();
            state.dropped += 1;
            state.first_index += 1;
        }
        state.ring.push_back(span);
    }

    /// The retained spans, oldest first (empty when disabled).
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner.state.lock().unwrap().ring.iter().cloned().collect()
        })
    }

    /// Retained spans whose all-time index is `>= since`, plus the
    /// cursor to pass as the next `since` — the `/trace?since=` contract.
    /// A `since` older than the retained tail silently returns from the
    /// oldest retained span (the gap is visible in [`TraceSink::dropped`]).
    pub fn spans_since(&self, since: u64) -> (u64, Vec<TraceSpan>) {
        let Some(inner) = &self.0 else {
            return (0, Vec::new());
        };
        let state = inner.state.lock().unwrap();
        let next = state.first_index + state.ring.len() as u64;
        let skip = since.saturating_sub(state.first_index) as usize;
        let spans = state.ring.iter().skip(skip).cloned().collect();
        (next, spans)
    }

    /// Every span of one trace, in record order (scans the retained
    /// tail).
    pub fn for_trace(&self, id: TraceId) -> Vec<TraceSpan> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner
                .state
                .lock()
                .unwrap()
                .ring
                .iter()
                .filter(|s| s.trace == id)
                .cloned()
                .collect()
        })
    }

    /// Spans evicted from the ring (or rejected at capacity 0).
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.state.lock().unwrap().dropped)
    }

    /// Spans ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| {
            let state = inner.state.lock().unwrap();
            state.first_index + state.ring.len() as u64
        })
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.state.lock().unwrap().ring.len())
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained tail as Chrome trace-event JSON (see
    /// [`chrome_trace_json`]).
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(&self.spans())
    }
}

/// Escape a string for a JSON string literal (quotes not included).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans in the Chrome trace-event format (the JSON-object form,
/// loadable by Perfetto and `chrome://tracing`).
///
/// Each span becomes one **matched async begin/end pair** (`"ph": "b"` /
/// `"ph": "e"`) keyed by the trace id, so every tone renders as its own
/// track of hops and overlapping tones from different cells cannot
/// mis-nest the way synchronous `B`/`E` stack events would. Timestamps
/// are the span's *simulated-time* bounds in microseconds; the wall-clock
/// cost rides along in `args.wall_ns`.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for s in spans {
        let ts = s.from.as_secs_f64() * 1e6;
        let te = s.to.as_secs_f64() * 1e6;
        let tid = if s.cell == usize::MAX { 0 } else { s.cell + 1 };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"mdn\", \"ph\": \"b\", \"id\": \"{}\", \
             \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}, \
             \"args\": {{\"detail\": \"{}\", \"wall_ns\": {}}}}},",
            s.kind.name(),
            s.trace,
            esc(&s.detail),
            s.wall_ns,
        );
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"mdn\", \"ph\": \"e\", \"id\": \"{}\", \
             \"pid\": 1, \"tid\": {tid}, \"ts\": {te}}}",
            s.kind.name(),
            s.trace,
        );
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, kind: SpanKind, from_ms: u64, to_ms: u64) -> TraceSpan {
        TraceSpan {
            trace: TraceId(trace),
            kind,
            from: Duration::from_millis(from_ms),
            to: Duration::from_millis(to_ms),
            wall_ns: 42,
            cell: 0,
            detail: "c0-s0".into(),
        }
    }

    #[test]
    fn trace_id_is_deterministic_and_distinct() {
        let a = TraceId::derive(0, 0, 0);
        assert_eq!(a, TraceId::derive(0, 0, 0));
        // Neighbouring coordinates must not collide.
        let mut seen = std::collections::BTreeSet::new();
        for cell in 0..8u64 {
            for sw in 0..8u64 {
                for seq in 0..8u64 {
                    assert!(seen.insert(TraceId::derive(cell, sw, seq)));
                }
            }
        }
        assert_ne!(a.0, 0, "ids are never zero");
    }

    #[test]
    fn ring_keeps_newest_counts_drops_and_cursors() {
        let sink = TraceSink::with_capacity(3);
        for i in 0..5u64 {
            sink.record(span(i, SpanKind::Schedule, i, i + 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.total(), 5);
        let ids: Vec<u64> = sink.spans().iter().map(|s| s.trace.0).collect();
        assert_eq!(ids, [2, 3, 4]);
        // Cursor semantics: since=4 returns only the newest span; the
        // returned cursor re-fetches nothing until new spans arrive.
        let (next, tail) = sink.spans_since(4);
        assert_eq!(next, 5);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].trace.0, 4);
        let (_, empty) = sink.spans_since(next);
        assert!(empty.is_empty());
        // A cursor older than the retained tail clamps to the tail.
        let (_, clamped) = sink.spans_since(0);
        assert_eq!(clamped.len(), 3);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        sink.record(span(1, SpanKind::Emit, 0, 1));
        assert!(sink.spans().is_empty());
        assert_eq!(sink.dropped(), 0);
        assert!(!sink.is_enabled());
        assert_eq!(sink.spans_since(0), (0, Vec::new()));
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let sink = TraceSink::with_capacity(0);
        sink.record(span(1, SpanKind::Emit, 0, 1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.total(), 1);
    }

    #[test]
    fn for_trace_filters_and_preserves_order() {
        let sink = TraceSink::with_capacity(16);
        sink.record(span(7, SpanKind::Schedule, 0, 10));
        sink.record(span(9, SpanKind::Schedule, 0, 10));
        sink.record(span(7, SpanKind::Emit, 10, 20));
        let spans = sink.for_trace(TraceId(7));
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [SpanKind::Schedule, SpanKind::Emit]);
    }

    #[test]
    fn deterministic_view_zeroes_wall_only() {
        let s = span(7, SpanKind::Detect, 0, 300);
        let v = s.deterministic_view();
        assert_eq!(v.wall_ns, 0);
        assert_eq!((v.trace, v.kind, v.from, v.to, v.cell), (s.trace, s.kind, s.from, s.to, s.cell));
        assert_eq!(v.detail, s.detail);
    }

    #[test]
    fn chrome_json_emits_matched_pairs() {
        let sink = TraceSink::with_capacity(8);
        sink.record(span(7, SpanKind::Schedule, 0, 100));
        sink.record(span(7, SpanKind::Emit, 100, 250));
        let json = sink.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\": \"b\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"e\"").count(), 2);
        assert!(json.contains("\"name\": \"schedule\""));
        assert!(json.contains("\"wall_ns\": 42"));
        // Simulated time in microseconds.
        assert!(json.contains("\"ts\": 100000"), "{json}");
        // Detail strings are escaped.
        let tricky = TraceSpan {
            detail: "a\"b\\c".into(),
            ..span(8, SpanKind::Missed, 0, 1)
        };
        let json = chrome_trace_json(&[tricky]);
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
