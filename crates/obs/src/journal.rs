//! A bounded ring-buffer event journal.
//!
//! Counters summarise *how often*; the journal answers *what happened
//! last* — the final N health transitions, fault activations, or
//! fallback switches before a snapshot was taken. It is a fixed-capacity
//! ring: when full, the oldest event is dropped and a drop counter is
//! bumped, so long chaos runs can't grow memory without bound (the same
//! defect [`HealthTracker`] had with its unbounded timeline).
//!
//! [`HealthTracker`]: https://docs.rs/mdn-core

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One journal entry: when it happened (scenario clock), an event kind
/// tag (e.g. `"health.transition"`, `"fault.noise_burst"`), and a short
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Scenario-clock timestamp of the event.
    pub at: Duration,
    /// Dotted event-kind tag, e.g. `"health.transition"`.
    pub kind: String,
    /// Free-form detail, e.g. `"sw1: Healthy -> Degraded"`.
    pub detail: String,
}

#[derive(Debug)]
struct JournalInner {
    events: Mutex<JournalState>,
    capacity: usize,
}

#[derive(Debug)]
struct JournalState {
    ring: VecDeque<JournalEvent>,
    dropped: u64,
}

/// A bounded, shareable event journal. Cloning is a cheap `Arc` clone;
/// the default value is a disabled (no-op) journal.
#[derive(Debug, Clone, Default)]
pub struct Journal(Option<Arc<JournalInner>>);

impl Journal {
    /// A journal keeping the last `capacity` events (capacity 0 keeps
    /// none but still counts drops).
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Some(Arc::new(JournalInner {
            events: Mutex::new(JournalState {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity,
        })))
    }

    /// A journal that ignores every record.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Is this a live journal?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, at: Duration, kind: &str, detail: impl Into<String>) {
        let Some(inner) = &self.0 else { return };
        let mut state = inner.events.lock().unwrap();
        if inner.capacity == 0 {
            state.dropped += 1;
            return;
        }
        if state.ring.len() == inner.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(JournalEvent {
            at,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<JournalEvent> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner.events.lock().unwrap().ring.iter().cloned().collect()
        })
    }

    /// How many events were evicted (or rejected at capacity 0).
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.events.lock().unwrap().dropped)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.events.lock().unwrap().ring.len())
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.record(Duration::from_millis(i), "k", format!("e{i}"));
        }
        let events: Vec<String> = j.events().into_iter().map(|e| e.detail).collect();
        assert_eq!(events, ["e2", "e3", "e4"]);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        j.record(Duration::ZERO, "k", "x");
        assert!(j.events().is_empty());
        assert_eq!(j.dropped(), 0);
        assert!(!j.is_enabled());
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let j = Journal::with_capacity(0);
        j.record(Duration::ZERO, "k", "x");
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 1);
    }
}
