//! Discrete-event engine.
//!
//! A deterministic event queue over virtual time. Ties are broken by
//! insertion order, so simulations are exactly reproducible run-to-run —
//! the property that lets every figure in this repo regenerate bit-for-bit.

use crate::ftable::PortId;
use crate::packet::Packet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Identifies a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// An event scheduled on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A packet finishes crossing a link and arrives at `node` on `in_port`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiver.
        in_port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// `node`'s transmitter on `port` finishes serializing a packet and can
    /// start on the next queued one.
    PortFree {
        /// Transmitting node.
        node: NodeId,
        /// The now-idle port.
        port: PortId,
    },
    /// A traffic generator on `node` should emit its next packet.
    Generate {
        /// Generating host.
        node: NodeId,
        /// Which of the host's generators fired.
        gen_idx: usize,
    },
    /// A caller-scheduled tick; the run loop yields these to the
    /// application layer (e.g. the 300 ms queue-sonification cadence).
    Tick {
        /// Caller-chosen tag.
        tag: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: Duration,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute virtual time `at`.
    pub fn schedule(&mut self, at: Duration, event: Event) {
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Duration> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Duration, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(tag: u64) -> Event {
        Event::Tick { tag }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Duration::from_millis(30), tick(3));
        q.schedule(Duration::from_millis(10), tick(1));
        q.schedule(Duration::from_millis(20), tick(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Tick { tag } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Duration::from_millis(5);
        for tag in 0..10 {
            q.schedule(t, tick(tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Tick { tag } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Duration::from_millis(7), tick(0));
        q.schedule(Duration::from_millis(3), tick(1));
        assert_eq!(q.peek_time(), Some(Duration::from_millis(3)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, Duration::from_millis(3));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Duration::ZERO, tick(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
