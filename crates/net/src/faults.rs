//! Scheduled network faults: link flaps and switch crashes.
//!
//! A [`FaultScript`] is a sorted list of `(time, fault)` events applied
//! to a [`Network`] as virtual time passes — the network-layer third of
//! the fault-injection subsystem (frame-level faults live in
//! `mdn_proto::faults`, acoustic faults in `mdn_acoustics::faults`).
//! Scripts are plain data, so a chaos scenario is reproducible by
//! construction: same script, same network, same outcome.

use crate::link::LinkId;
use crate::network::Network;
use crate::sim::NodeId;
use std::time::Duration;

/// One injectable network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Take a link administratively down (queued packets are dropped).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Crash a switch: wipe its flow table, black-hole its traffic.
    SwitchCrash(NodeId),
    /// Restart a crashed switch (its table stays empty).
    SwitchRestart(NodeId),
}

/// A time-ordered schedule of [`NetFault`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// `(when, what)`, sorted by time; ties apply in insertion order.
    events: Vec<(Duration, NetFault)>,
    applied: usize,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `fault` at `time` (builder-style; keeps the list sorted,
    /// ties after existing events at the same time).
    pub fn at(mut self, time: Duration, fault: NetFault) -> Self {
        let idx = self.events.partition_point(|(t, _)| *t <= time);
        self.events.insert(idx, (time, fault));
        self
    }

    /// Schedule a link flap: down at `down_at`, back up at `up_at`.
    ///
    /// # Panics
    /// Panics unless `down_at < up_at`.
    pub fn flap(self, link: LinkId, down_at: Duration, up_at: Duration) -> Self {
        assert!(down_at < up_at, "flap must go down before it comes up");
        self.at(down_at, NetFault::LinkDown(link))
            .at(up_at, NetFault::LinkUp(link))
    }

    /// Apply every not-yet-applied fault scheduled at or before `now`.
    /// Returns how many were applied. Call once per control tick.
    pub fn apply_due(&mut self, net: &mut Network, now: Duration) -> usize {
        let mut n = 0;
        while let Some(&(time, fault)) = self.events.get(self.applied) {
            if time > now {
                break;
            }
            match fault {
                NetFault::LinkDown(l) => net.set_link_up(l, false),
                NetFault::LinkUp(l) => net.set_link_up(l, true),
                NetFault::SwitchCrash(s) => net.crash_switch(s),
                NetFault::SwitchRestart(s) => net.restart_switch(s),
            }
            self.applied += 1;
            n += 1;
        }
        n
    }

    /// Faults not yet applied.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.applied
    }

    /// The full schedule (applied and pending), in order.
    pub fn events(&self) -> &[(Duration, NetFault)] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftable::{Action, Match, Rule};
    use crate::packet::{FlowKey, Ip};
    use crate::traffic::TrafficPattern;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn events_stay_sorted_regardless_of_insertion_order() {
        let s = FaultScript::new()
            .at(MS(300), NetFault::LinkUp(LinkId(0)))
            .at(MS(100), NetFault::LinkDown(LinkId(0)))
            .at(MS(200), NetFault::SwitchCrash(NodeId(1)));
        let times: Vec<u64> = s.events().iter().map(|(t, _)| t.as_millis() as u64).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn apply_due_is_incremental() {
        let mut net = Network::new();
        let h1 = net.add_host("h1", Ip::v4(10, 0, 0, 1));
        let s = net.add_switch("s1", 2);
        let link = net.connect(h1, 0, s, 0, 1_000_000, Duration::ZERO);
        let mut script = FaultScript::new().flap(link, MS(100), MS(300));
        assert_eq!(script.remaining(), 2);
        assert_eq!(script.apply_due(&mut net, MS(50)), 0);
        assert_eq!(script.apply_due(&mut net, MS(100)), 1);
        assert!(!net.link(link).up);
        // Same instant again: nothing re-applies.
        assert_eq!(script.apply_due(&mut net, MS(100)), 0);
        assert_eq!(script.apply_due(&mut net, MS(500)), 1);
        assert!(net.link(link).up);
        assert_eq!(script.remaining(), 0);
    }

    #[test]
    fn scripted_flap_interrupts_then_restores_traffic() {
        let mut net = Network::new();
        let h1 = net.add_host("h1", Ip::v4(10, 0, 0, 1));
        let h2 = net.add_host("h2", Ip::v4(10, 0, 0, 2));
        let s = net.add_switch("s1", 2);
        net.connect(h1, 0, s, 0, 10_000_000, Duration::from_micros(50));
        let egress = net.connect(h2, 0, s, 1, 10_000_000, Duration::from_micros(50));
        net.install_rule(
            s,
            Rule {
                mat: Match::ANY,
                priority: 0,
                action: Action::Forward(1),
            },
        );
        net.attach_generator(
            h1,
            TrafficPattern::Cbr {
                flow: FlowKey::udp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 2),
                pps: 100.0,
                size: 100,
                start: Duration::ZERO,
                stop: MS(1000),
            },
        );
        let mut script = FaultScript::new().flap(egress, MS(300), MS(600));
        for step in 1..=10u64 {
            net.schedule_tick(MS(step * 100), step);
        }
        while let crate::network::RunOutcome::Tick { at, .. } = net.run_until(MS(1200)) {
            script.apply_due(&mut net, at);
        }
        net.drain();
        let before = net.host(h2).rx_bytes_between(Duration::ZERO, MS(300));
        let during = net.host(h2).rx_bytes_between(MS(310), MS(600));
        let after = net.host(h2).rx_bytes_between(MS(610), MS(1200));
        assert!(before > 0);
        assert_eq!(during, 0, "flapped link must carry nothing");
        assert!(after > 0, "traffic must resume after the flap");
        assert!(net.counters.link_drops > 0);
    }

    #[test]
    fn switch_crash_script_wipes_table() {
        let mut net = Network::new();
        let s = net.add_switch("s1", 2);
        net.install_rule(
            s,
            Rule {
                mat: Match::ANY,
                priority: 0,
                action: Action::Forward(1),
            },
        );
        let mut script = FaultScript::new()
            .at(MS(100), NetFault::SwitchCrash(s))
            .at(MS(200), NetFault::SwitchRestart(s));
        script.apply_due(&mut net, MS(150));
        assert!(net.switch(s).crashed);
        assert!(net.switch(s).table.is_empty());
        script.apply_due(&mut net, MS(250));
        assert!(!net.switch(s).crashed);
        assert!(net.switch(s).table.is_empty(), "restart does not restore rules");
    }

    #[test]
    #[should_panic(expected = "down before")]
    fn flap_rejects_inverted_window() {
        FaultScript::new().flap(LinkId(0), MS(200), MS(100));
    }
}
