//! Bounded drop-tail FIFO queues.
//!
//! Every switch output port owns one. Queue *length in packets* is the
//! quantity the paper's traffic-engineering applications sonify (<25
//! packets → low tone, 25–75 → mid, >75 → high; §6), so the queue exposes
//! exactly that, plus drop accounting.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Packet accepted.
    Ok,
    /// Packet dropped: the queue was full.
    Dropped,
}

/// A bounded FIFO packet queue with drop-tail semantics.
///
/// ```
/// use mdn_net::queue::{PacketQueue, Enqueue};
/// use mdn_net::packet::{Packet, FlowKey, Ip};
/// use std::time::Duration;
///
/// let flow = FlowKey::udp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 2);
/// let mut q = PacketQueue::new(2);
/// assert_eq!(q.enqueue(Packet::new(flow, 100, 0, Duration::ZERO)), Enqueue::Ok);
/// assert_eq!(q.enqueue(Packet::new(flow, 100, 1, Duration::ZERO)), Enqueue::Ok);
/// assert_eq!(q.enqueue(Packet::new(flow, 100, 2, Duration::ZERO)), Enqueue::Dropped);
/// assert_eq!(q.dequeue().unwrap().seq, 0); // FIFO
/// ```
#[derive(Debug, Clone)]
pub struct PacketQueue {
    items: VecDeque<Packet>,
    capacity: usize,
    /// Total packets accepted over the queue's lifetime.
    pub accepted: u64,
    /// Total packets dropped at the tail.
    pub dropped: u64,
    /// Total bytes accepted.
    pub accepted_bytes: u64,
    /// Deepest occupancy (in packets) ever reached — the congestion
    /// figure the paper's queue tones quantise into low/mid/high bands.
    pub high_water: usize,
    /// Total packets removed by [`PacketQueue::dequeue`] over the queue's
    /// lifetime (i.e. handed to the transmitter).
    pub dequeued: u64,
    /// Total packets discarded by [`PacketQueue::clear`] over the queue's
    /// lifetime (link failures, switch crashes). Together with `dequeued`
    /// and the current occupancy this reconciles exactly against
    /// `accepted`: `accepted == dequeued + cleared + len()`.
    pub cleared: u64,
}

impl PacketQueue {
    /// A queue holding at most `capacity` packets.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            accepted: 0,
            dropped: 0,
            accepted_bytes: 0,
            high_water: 0,
            dequeued: 0,
            cleared: 0,
        }
    }

    /// The configured capacity in packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in packets — the number the paper's queue-tone
    /// applications report.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.items.iter().map(|p| p.size_bytes as u64).sum()
    }

    /// Enqueue with drop-tail: reject the new packet when full.
    pub fn enqueue(&mut self, packet: Packet) -> Enqueue {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Enqueue::Dropped;
        }
        self.accepted += 1;
        self.accepted_bytes += packet.size_bytes as u64;
        self.items.push_back(packet);
        self.high_water = self.high_water.max(self.items.len());
        Enqueue::Ok
    }

    /// Dequeue the head packet, if any.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.items.pop_front();
        if pkt.is_some() {
            self.dequeued += 1;
        }
        pkt
    }

    /// Peek at the head packet without removing it.
    pub fn peek(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Drop everything currently queued (e.g. on link failure or switch
    /// crash) and return how many packets were discarded, so callers can
    /// charge the loss to the right drop counter instead of re-deriving
    /// the occupancy themselves. The count also accumulates into the
    /// lifetime [`cleared`](Self::cleared) counter.
    #[must_use = "cleared packets must be charged to a drop counter"]
    pub fn clear(&mut self) -> usize {
        let drained = self.items.len();
        self.items.clear();
        self.cleared += drained as u64;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Ip};
    use std::time::Duration;

    fn pkt(seq: u64) -> Packet {
        let flow = FlowKey::tcp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 80);
        Packet::new(flow, 1500, seq, Duration::ZERO)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = PacketQueue::new(10);
        for i in 0..5 {
            assert_eq!(q.enqueue(pkt(i)), Enqueue::Ok);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().seq, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drop_tail_when_full() {
        let mut q = PacketQueue::new(2);
        assert_eq!(q.enqueue(pkt(0)), Enqueue::Ok);
        assert_eq!(q.enqueue(pkt(1)), Enqueue::Ok);
        assert_eq!(q.enqueue(pkt(2)), Enqueue::Dropped);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.accepted, 2);
        // The head is still the oldest packet (tail drop, not head drop).
        assert_eq!(q.peek().unwrap().seq, 0);
    }

    #[test]
    fn byte_accounting() {
        let mut q = PacketQueue::new(10);
        q.enqueue(pkt(0));
        q.enqueue(pkt(1));
        assert_eq!(q.bytes(), 3000);
        assert_eq!(q.accepted_bytes, 3000);
        q.dequeue();
        assert_eq!(q.bytes(), 1500);
        assert_eq!(q.accepted_bytes, 3000); // lifetime counter unchanged
    }

    #[test]
    fn clear_empties_queue_and_reports_drained_count() {
        let mut q = PacketQueue::new(10);
        q.enqueue(pkt(0));
        q.enqueue(pkt(1));
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.accepted, 2); // lifetime counters survive clear
        assert_eq!(q.cleared, 2);
        assert_eq!(q.clear(), 0, "clearing an empty queue drains nothing");
        assert_eq!(q.cleared, 2);
    }

    #[test]
    fn lifetime_counters_reconcile() {
        let mut q = PacketQueue::new(3);
        for i in 0..5 {
            q.enqueue(pkt(i)); // 3 accepted, 2 tail-dropped
        }
        q.dequeue();
        let _ = q.clear(); // 2 cleared
        q.enqueue(pkt(5));
        assert_eq!(q.accepted, 4);
        assert_eq!(q.dropped, 2);
        assert_eq!(q.dequeued, 1);
        assert_eq!(q.cleared, 2);
        assert_eq!(
            q.accepted,
            q.dequeued + q.cleared + q.len() as u64,
            "accepted == dequeued + cleared + in_flight"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        PacketQueue::new(0);
    }

    #[test]
    fn high_water_tracks_deepest_occupancy() {
        let mut q = PacketQueue::new(10);
        q.enqueue(pkt(0));
        q.enqueue(pkt(1));
        q.enqueue(pkt(2));
        assert_eq!(q.high_water, 3);
        q.dequeue();
        q.dequeue();
        assert_eq!(q.high_water, 3, "high-water mark never recedes");
        q.enqueue(pkt(3));
        assert_eq!(q.high_water, 3);
        for i in 4..8 {
            q.enqueue(pkt(i));
        }
        assert_eq!(q.high_water, 6);
        let _ = q.clear();
        assert_eq!(q.high_water, 6, "clear keeps lifetime accounting");
    }

    #[test]
    fn dequeue_frees_capacity() {
        let mut q = PacketQueue::new(1);
        q.enqueue(pkt(0));
        assert_eq!(q.enqueue(pkt(1)), Enqueue::Dropped);
        q.dequeue();
        assert_eq!(q.enqueue(pkt(2)), Enqueue::Ok);
    }
}
