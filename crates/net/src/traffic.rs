//! Traffic generators.
//!
//! The workloads behind the paper's experiments: constant-bit-rate flows, a
//! linearly ramping source (the Figure 5a load-balancing sender
//! "continuously sends traffic with a progressively increasing rate"),
//! Poisson background flows (the heavy-hitter mix), and a sequential port
//! scan (Figure 4c).

use crate::packet::{FlowKey, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What a host should transmit.
#[derive(Debug, Clone, Copy)]
pub enum TrafficPattern {
    /// Constant packet rate.
    Cbr {
        /// The flow to emit.
        flow: FlowKey,
        /// Packets per second.
        pps: f64,
        /// Packet size in bytes.
        size: u32,
        /// First emission time.
        start: Duration,
        /// No emissions at or after this time.
        stop: Duration,
    },
    /// Linearly increasing packet rate between `start` and `stop`.
    Ramp {
        /// The flow to emit.
        flow: FlowKey,
        /// Rate at `start`, packets per second.
        start_pps: f64,
        /// Rate at `stop`, packets per second.
        end_pps: f64,
        /// Packet size in bytes.
        size: u32,
        /// Ramp begin.
        start: Duration,
        /// Ramp end (emissions cease).
        stop: Duration,
    },
    /// Poisson arrivals (exponential inter-packet gaps), deterministic
    /// under `seed`.
    Poisson {
        /// The flow to emit.
        flow: FlowKey,
        /// Mean packets per second.
        mean_pps: f64,
        /// Packet size in bytes.
        size: u32,
        /// First emission time.
        start: Duration,
        /// No emissions at or after this time.
        stop: Duration,
        /// RNG seed.
        seed: u64,
    },
    /// One probe per destination port, sequentially — a naive port scan.
    PortScan {
        /// Template flow; `dst_port` is overwritten per probe.
        template: FlowKey,
        /// First port probed (inclusive).
        first_port: u16,
        /// Last port probed (inclusive).
        last_port: u16,
        /// Gap between consecutive probes.
        interval: Duration,
        /// Probe packet size in bytes.
        size: u32,
        /// Scan begin.
        start: Duration,
    },
}

/// A running generator: a pattern plus its emission state.
#[derive(Debug, Clone)]
pub struct Generator {
    pattern: TrafficPattern,
    seq: u64,
    scan_offset: u32,
    rng: Option<StdRng>,
}

impl Generator {
    /// Wrap a pattern.
    pub fn new(pattern: TrafficPattern) -> Self {
        let rng = match &pattern {
            TrafficPattern::Poisson { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        Self {
            pattern,
            seq: 0,
            scan_offset: 0,
            rng,
        }
    }

    /// When the first emission should fire.
    pub fn start_time(&self) -> Duration {
        match &self.pattern {
            TrafficPattern::Cbr { start, .. }
            | TrafficPattern::Ramp { start, .. }
            | TrafficPattern::Poisson { start, .. }
            | TrafficPattern::PortScan { start, .. } => *start,
        }
    }

    /// Emit the packet due at `now`. Returns the packet and the time of the
    /// next emission, or `None` for the packet / next time when the pattern
    /// has finished.
    pub fn emit(&mut self, now: Duration) -> (Option<Packet>, Option<Duration>) {
        match self.pattern {
            TrafficPattern::Cbr {
                flow,
                pps,
                size,
                stop,
                ..
            } => {
                if now >= stop {
                    return (None, None);
                }
                let pkt = self.make(flow, size, now);
                let next = now + Duration::from_secs_f64(1.0 / pps.max(1e-9));
                (Some(pkt), (next < stop).then_some(next))
            }
            TrafficPattern::Ramp {
                flow,
                start_pps,
                end_pps,
                size,
                start,
                stop,
            } => {
                if now >= stop {
                    return (None, None);
                }
                let span = stop.as_secs_f64() - start.as_secs_f64();
                let frac = if span > 0.0 {
                    ((now.as_secs_f64() - start.as_secs_f64()) / span).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                // Instantaneous rate r(t) = start_pps + m·t and slope m of
                // the ramp at `now`.
                let rate = (start_pps + (end_pps - start_pps) * frac).max(1e-9);
                let slope = if span > 0.0 {
                    (end_pps - start_pps) / span
                } else {
                    0.0
                };
                let pkt = self.make(flow, size, now);
                // The next emission is where the integral of r(t) from `now`
                // accumulates one packet: r·Δ + m·Δ²/2 = 1, so
                // Δ = (−r + √(r² + 2m)) / m. Using 1/r(now) instead (the
                // rate at the *previous* emission) systematically overshoots
                // each gap on a rising ramp and undershoots the analytic
                // packet count (start_pps+end_pps)/2 · span.
                let disc = rate * rate + 2.0 * slope;
                let gap = if slope.abs() < 1e-12 || disc <= 0.0 {
                    1.0 / rate
                } else {
                    (disc.sqrt() - rate) / slope
                };
                let next = now + Duration::from_secs_f64(gap.max(1e-12));
                (Some(pkt), (next < stop).then_some(next))
            }
            TrafficPattern::Poisson {
                flow,
                mean_pps,
                size,
                stop,
                ..
            } => {
                if now >= stop {
                    return (None, None);
                }
                let pkt = self.make(flow, size, now);
                let u: f64 = self
                    .rng
                    .as_mut()
                    .expect("poisson has rng")
                    .gen_range(1e-12..1.0);
                let gap = -u.ln() / mean_pps.max(1e-9);
                let next = now + Duration::from_secs_f64(gap);
                (Some(pkt), (next < stop).then_some(next))
            }
            TrafficPattern::PortScan {
                template,
                first_port,
                last_port,
                interval,
                size,
                ..
            } => {
                let port = (first_port as u32 + self.scan_offset) as u16;
                if port > last_port || (first_port as u32 + self.scan_offset) > u16::MAX as u32 {
                    return (None, None);
                }
                let flow = FlowKey {
                    dst_port: port,
                    ..template
                };
                let pkt = self.make(flow, size, now);
                self.scan_offset += 1;
                let more = (first_port as u32 + self.scan_offset) <= last_port as u32;
                (Some(pkt), more.then(|| now + interval))
            }
        }
    }

    fn make(&mut self, flow: FlowKey, size: u32, now: Duration) -> Packet {
        let pkt = Packet::new(flow, size, self.seq, now);
        self.seq += 1;
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Ip;

    fn flow() -> FlowKey {
        FlowKey::udp(Ip::v4(10, 0, 0, 1), 5000, Ip::v4(10, 0, 0, 2), 9000)
    }

    fn drain(mut g: Generator, limit: usize) -> Vec<(Duration, Packet)> {
        let mut out = Vec::new();
        let mut t = g.start_time();
        for _ in 0..limit {
            let (pkt, next) = g.emit(t);
            if let Some(p) = pkt {
                out.push((t, p));
            }
            match next {
                Some(n) => t = n,
                None => break,
            }
        }
        out
    }

    #[test]
    fn cbr_emits_at_constant_interval() {
        let g = Generator::new(TrafficPattern::Cbr {
            flow: flow(),
            pps: 100.0,
            size: 500,
            start: Duration::ZERO,
            stop: Duration::from_secs(1),
        });
        let pkts = drain(g, 1000);
        assert_eq!(pkts.len(), 100);
        let gap = pkts[1].0 - pkts[0].0;
        assert!((gap.as_secs_f64() - 0.01).abs() < 1e-9);
        // Sequence numbers increase.
        assert!(pkts.windows(2).all(|w| w[1].1.seq == w[0].1.seq + 1));
    }

    #[test]
    fn cbr_respects_stop() {
        let g = Generator::new(TrafficPattern::Cbr {
            flow: flow(),
            pps: 10.0,
            size: 100,
            start: Duration::from_millis(500),
            stop: Duration::from_millis(900),
        });
        let pkts = drain(g, 100);
        assert!(pkts.iter().all(|(t, _)| *t < Duration::from_millis(900)));
        assert!(pkts[0].0 == Duration::from_millis(500));
        assert_eq!(pkts.len(), 4);
    }

    #[test]
    fn ramp_accelerates() {
        let g = Generator::new(TrafficPattern::Ramp {
            flow: flow(),
            start_pps: 10.0,
            end_pps: 1000.0,
            size: 100,
            start: Duration::ZERO,
            stop: Duration::from_secs(2),
        });
        let pkts = drain(g, 100_000);
        assert!(pkts.len() > 200);
        // Count packets in first and last 200 ms.
        let early = pkts
            .iter()
            .filter(|(t, _)| *t < Duration::from_millis(200))
            .count();
        let late = pkts
            .iter()
            .filter(|(t, _)| *t >= Duration::from_millis(1800))
            .count();
        assert!(late > 10 * early.max(1), "early {early} late {late}");
    }

    /// Regression: the ramp gap must integrate the instantaneous rate, not
    /// sample it at the previous emission. The old per-sample gap is longest
    /// exactly when the rate is about to grow, so a steep ramp from a low
    /// start rate lost a large slice of its window to the first gap: 2→600
    /// pps over 1 s emitted 226 packets against the analytic integral
    /// (start+end)/2 · span = 301 (−25%), and 0.3→300 pps over 1 s emitted
    /// a single packet because 1/0.3 s overshot `stop` entirely. The
    /// integrated gap lands within 1% on every shape, including a
    /// decelerating ramp.
    #[test]
    fn ramp_count_matches_analytic_integral() {
        for &(start_pps, end_pps, secs) in &[
            (2.0, 600.0, 1u64),
            (0.3, 300.0, 1),
            (10.0, 1000.0, 2),
            (50.0, 500.0, 4),
            (400.0, 40.0, 3),
        ] {
            let g = Generator::new(TrafficPattern::Ramp {
                flow: flow(),
                start_pps,
                end_pps,
                size: 100,
                start: Duration::ZERO,
                stop: Duration::from_secs(secs),
            });
            let pkts = drain(g, 1_000_000);
            let expected = (start_pps + end_pps) / 2.0 * secs as f64;
            let got = pkts.len() as f64;
            assert!(
                (got - expected).abs() / expected < 0.01,
                "ramp {start_pps}->{end_pps} over {secs}s: emitted {got}, analytic {expected}"
            );
        }
    }

    /// A zero-length ramp degenerates to a single burst window and must not
    /// divide by zero or spin.
    #[test]
    fn ramp_zero_span_is_silent() {
        let g = Generator::new(TrafficPattern::Ramp {
            flow: flow(),
            start_pps: 10.0,
            end_pps: 1000.0,
            size: 100,
            start: Duration::from_secs(1),
            stop: Duration::from_secs(1),
        });
        let pkts = drain(g, 1000);
        assert!(pkts.is_empty());
    }

    #[test]
    fn poisson_is_deterministic_and_near_mean() {
        let make = || {
            Generator::new(TrafficPattern::Poisson {
                flow: flow(),
                mean_pps: 200.0,
                size: 100,
                start: Duration::ZERO,
                stop: Duration::from_secs(5),
                seed: 11,
            })
        };
        let a = drain(make(), 100_000);
        let b = drain(make(), 100_000);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.0 == y.0));
        // ~1000 packets expected over 5 s at 200 pps.
        assert!((800..1200).contains(&a.len()), "got {}", a.len());
    }

    #[test]
    fn port_scan_sweeps_every_port_once() {
        let g = Generator::new(TrafficPattern::PortScan {
            template: flow(),
            first_port: 20,
            last_port: 29,
            interval: Duration::from_millis(10),
            size: 60,
            start: Duration::from_millis(100),
        });
        let pkts = drain(g, 100);
        assert_eq!(pkts.len(), 10);
        let ports: Vec<u16> = pkts.iter().map(|(_, p)| p.flow.dst_port).collect();
        assert_eq!(ports, (20..=29).collect::<Vec<_>>());
        // Uniform spacing.
        assert_eq!(pkts[1].0 - pkts[0].0, Duration::from_millis(10));
    }

    #[test]
    fn port_scan_single_port_edge() {
        let g = Generator::new(TrafficPattern::PortScan {
            template: flow(),
            first_port: 80,
            last_port: 80,
            interval: Duration::from_millis(1),
            size: 60,
            start: Duration::ZERO,
        });
        let pkts = drain(g, 10);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].1.flow.dst_port, 80);
    }
}
