//! # mdn-net — the virtual network testbed
//!
//! A deterministic discrete-event network simulator: the role Mininet (and
//! the Zodiac FX hardware testbed) played in the Music-Defined Networking
//! paper. Hosts generate traffic, switches forward according to
//! match-action flow tables through bounded per-port queues, and links are
//! rate-limited with fixed latency. Everything is reproducible: the event
//! queue breaks ties deterministically and all randomness is seeded.
//!
//! * [`packet`] — packets, 5-tuple flow keys, addressing;
//! * [`flow`] — FNV-1a flow hashing (the §5 heavy-hitter mapping);
//! * [`queue`] — bounded drop-tail FIFOs with occupancy accounting;
//! * [`ftable`] — priority match-action tables with group/split actions;
//! * [`link`] — rate/latency links;
//! * [`node`] — hosts (with traffic generators) and switches;
//! * [`traffic`] — CBR / ramp / Poisson / port-scan generators;
//! * [`sim`] — the deterministic event queue;
//! * [`network`] — the event loop and the tick-driven controller API;
//! * [`topology`] — line / rhomboid / star builders from the paper;
//! * [`stats`] — time series, CDFs and quantiles for the figures;
//! * [`faults`] — scheduled link flaps and switch crash/restart scripts
//!   for chaos scenarios.
//!
//! ```
//! use mdn_net::{network::Network, topology, ftable::{Rule, Match, Action}};
//! use mdn_net::packet::{FlowKey, Ip};
//! use mdn_net::traffic::TrafficPattern;
//! use std::time::Duration;
//!
//! let mut net = Network::new();
//! let t = topology::line(&mut net, 10_000_000, Duration::from_micros(50));
//! net.install_rule(t.s1, Rule {
//!     mat: Match::dst(Ip::v4(10, 0, 0, 2)),
//!     priority: 1,
//!     action: Action::Forward(1),
//! });
//! net.attach_generator(t.h1, TrafficPattern::Cbr {
//!     flow: FlowKey::udp(Ip::v4(10, 0, 0, 1), 1000, Ip::v4(10, 0, 0, 2), 2000),
//!     pps: 100.0,
//!     size: 1000,
//!     start: Duration::ZERO,
//!     stop: Duration::from_secs(1),
//! });
//! net.drain();
//! assert_eq!(net.host(t.h2).rx_packets, 100);
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod flow;
pub mod ftable;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use faults::{FaultScript, NetFault};
pub use network::{Network, QueueStat, QueueTotals, RunOutcome};
pub use packet::{FlowKey, Ip, Packet, Proto};
pub use sim::NodeId;
