//! Flow hashing.
//!
//! §5 of the paper: "we hash a flow tuple defined by source port,
//! destination port, source IP, destination IP and protocol type and map it
//! to a given frequency." This module provides the deterministic hash the
//! MDN heavy-hitter application maps into its frequency set.

use crate::packet::FlowKey;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Finalizing mixer (splitmix64): FNV-1a's low bits are weak under
/// correlated inputs, and flow buckets are taken modulo small counts, so
/// the raw hash is avalanched before use.
#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Hash a flow key: FNV-1a over the canonical 13-byte encoding
/// (src_ip · dst_ip · src_port · dst_port · proto, all big-endian),
/// finalized with a splitmix64 mixer.
pub fn hash_flow(flow: &FlowKey) -> u64 {
    let mut buf = [0u8; 13];
    buf[0..4].copy_from_slice(&flow.src_ip.0.to_be_bytes());
    buf[4..8].copy_from_slice(&flow.dst_ip.0.to_be_bytes());
    buf[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
    buf[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
    buf[12] = flow.proto.number();
    mix(fnv1a(&buf))
}

/// Map a flow into one of `buckets` slots (e.g. one slot per frequency in
/// an MDN frequency set).
///
/// # Panics
/// Panics if `buckets` is zero.
pub fn flow_bucket(flow: &FlowKey, buckets: usize) -> usize {
    assert!(buckets > 0, "need at least one bucket");
    (hash_flow(flow) % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Ip};

    fn flow(n: u8) -> FlowKey {
        FlowKey::tcp(
            Ip::v4(10, 0, 0, n),
            1000 + n as u16,
            Ip::v4(10, 0, 1, 1),
            80,
        )
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_flow(&flow(1)), hash_flow(&flow(1)));
    }

    #[test]
    fn different_flows_hash_differently() {
        // Not a collision-freedom guarantee, but these specific flows must
        // spread (the heavy-hitter experiment depends on it).
        let hashes: Vec<u64> = (0..32).map(|n| hash_flow(&flow(n))).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len());
    }

    #[test]
    fn direction_matters() {
        let f = flow(1);
        assert_ne!(hash_flow(&f), hash_flow(&f.reversed()));
    }

    #[test]
    fn buckets_cover_range() {
        for n in 0..64u8 {
            let b = flow_bucket(&flow(n), 10);
            assert!(b < 10);
        }
    }

    #[test]
    fn buckets_spread_reasonably() {
        // 256 flows into 16 buckets: the spread should be broad (most
        // buckets hit) and not wildly skewed.
        let mut counts = [0usize; 16];
        for n in 0..=255u8 {
            counts[flow_bucket(&flow(n), 16)] += 1;
        }
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonempty >= 12, "only {nonempty} buckets hit: {counts:?}");
        assert!(counts.iter().all(|&c| c <= 64), "skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        flow_bucket(&flow(1), 0);
    }
}
