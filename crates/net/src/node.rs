//! Nodes: hosts and switches.

use crate::ftable::{FlowTable, PortId};
use crate::packet::{FlowKey, Ip, Packet};
use crate::queue::PacketQueue;
use crate::traffic::Generator;
use std::time::Duration;

/// Default per-port queue capacity for switches, in packets. 100 puts the
/// paper's 25/75-packet tone thresholds at 25% / 75% occupancy.
pub const DEFAULT_SWITCH_QUEUE: usize = 100;

/// Default host egress queue capacity (generous; hosts model their own
/// buffering).
pub const DEFAULT_HOST_QUEUE: usize = 10_000;

/// Transmit state of one port.
#[derive(Debug, Clone)]
pub struct PortState {
    /// The egress queue feeding the transmitter.
    pub queue: PacketQueue,
    /// True while a packet is being serialized onto the wire.
    pub busy: bool,
}

impl PortState {
    /// A port with the given egress queue capacity.
    pub fn new(queue_capacity: usize) -> Self {
        Self {
            queue: PacketQueue::new(queue_capacity),
            busy: false,
        }
    }
}

/// What a switch does with a packet that matches no rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissPolicy {
    /// Drop it (the secure default; port knocking relies on this).
    Drop,
    /// Flood it out every port except the ingress (learning-switch-ish).
    Flood,
    /// Drop it, but queue a PacketIn summary in the switch's control-plane
    /// outbox for the controller (classic reactive OpenFlow).
    PacketIn,
}

/// A table-miss summary queued for the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRecord {
    /// When the miss happened.
    pub at: Duration,
    /// Ingress port.
    pub in_port: PortId,
    /// The packet's flow.
    pub flow: FlowKey,
    /// The packet's on-wire size.
    pub total_len: u32,
}

/// One record in a switch's receive tap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapRecord {
    /// Arrival time.
    pub at: Duration,
    /// Ingress port.
    pub in_port: PortId,
    /// The packet's flow.
    pub flow: FlowKey,
}

/// A switch: ports with queues, plus a flow table.
#[derive(Debug, Clone)]
pub struct SwitchNode {
    /// Human-readable name.
    pub name: String,
    /// The match-action table.
    pub table: FlowTable,
    /// Per-port transmit state.
    pub ports: Vec<PortState>,
    /// Behaviour on table miss.
    pub miss_policy: MissPolicy,
    /// Packets received (pre-lookup).
    pub rx_packets: u64,
    /// Packets dropped by a Drop rule or the Drop miss policy.
    pub policy_drops: u64,
    /// Optional per-packet receive tap (off by default; enables the
    /// "switch plays a sound per packet" telemetry couplings of §5).
    pub tap: Option<Vec<TapRecord>>,
    /// Control-plane outbox: table-miss summaries awaiting the controller
    /// (populated under [`MissPolicy::PacketIn`]).
    pub miss_outbox: Vec<MissRecord>,
    /// True while the switch is crashed: it black-holes every packet and
    /// its flow table has been wiped. Set via `Network::crash_switch`.
    pub crashed: bool,
}

impl SwitchNode {
    /// A switch with `num_ports` ports of `queue_capacity` packets each.
    pub fn new(name: impl Into<String>, num_ports: usize, queue_capacity: usize) -> Self {
        Self {
            name: name.into(),
            table: FlowTable::new(),
            ports: (0..num_ports)
                .map(|_| PortState::new(queue_capacity))
                .collect(),
            miss_policy: MissPolicy::Drop,
            rx_packets: 0,
            policy_drops: 0,
            tap: None,
            miss_outbox: Vec::new(),
            crashed: false,
        }
    }

    /// Start recording every received packet into the tap.
    pub fn enable_tap(&mut self) {
        self.tap.get_or_insert_with(Vec::new);
    }

    /// Occupancy of port `p`'s queue, in packets — the quantity §6
    /// sonifies.
    pub fn queue_len(&self, p: PortId) -> usize {
        self.ports[p].queue.len()
    }

    /// Total packets dropped at full queues across all ports.
    pub fn queue_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.queue.dropped).sum()
    }
}

/// One received-packet record in a host's log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxRecord {
    /// Arrival time.
    pub at: Duration,
    /// On-wire size.
    pub size_bytes: u32,
    /// The packet's flow.
    pub flow: FlowKey,
}

/// A host: one port, traffic generators, receive accounting.
#[derive(Debug, Clone)]
pub struct HostNode {
    /// Human-readable name.
    pub name: String,
    /// The host's address.
    pub ip: Ip,
    /// The single NIC port (port 0).
    pub port: PortState,
    /// Attached traffic generators.
    pub generators: Vec<Generator>,
    /// Packets received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Packets transmitted (handed to the NIC queue).
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Per-packet receive log, for time-series plots (Figure 3a).
    pub rx_log: Vec<RxRecord>,
}

impl HostNode {
    /// A host with the default egress queue.
    pub fn new(name: impl Into<String>, ip: Ip) -> Self {
        Self {
            name: name.into(),
            ip,
            port: PortState::new(DEFAULT_HOST_QUEUE),
            generators: Vec::new(),
            rx_packets: 0,
            rx_bytes: 0,
            tx_packets: 0,
            tx_bytes: 0,
            rx_log: Vec::new(),
        }
    }

    /// Record a delivery.
    pub fn record_rx(&mut self, packet: &Packet, at: Duration) {
        self.rx_packets += 1;
        self.rx_bytes += packet.size_bytes as u64;
        self.rx_log.push(RxRecord {
            at,
            size_bytes: packet.size_bytes,
            flow: packet.flow,
        });
    }

    /// Bytes received in the half-open interval `[from, to)`.
    pub fn rx_bytes_between(&self, from: Duration, to: Duration) -> u64 {
        self.rx_log
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .map(|r| r.size_bytes as u64)
            .sum()
    }
}

/// A node in the network.
#[derive(Debug, Clone)]
pub enum Node {
    /// An end host.
    Host(HostNode),
    /// A switch.
    Switch(SwitchNode),
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host(h) => &h.name,
            Node::Switch(s) => &s.name,
        }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        match self {
            Node::Host(_) => 1,
            Node::Switch(s) => s.ports.len(),
        }
    }

    /// The transmit state of port `p`.
    pub fn port_mut(&mut self, p: PortId) -> &mut PortState {
        match self {
            Node::Host(h) => {
                assert_eq!(p, 0, "hosts have a single port");
                &mut h.port
            }
            Node::Switch(s) => &mut s.ports[p],
        }
    }

    /// Immutable view of port `p`.
    pub fn port(&self, p: PortId) -> &PortState {
        match self {
            Node::Host(h) => {
                assert_eq!(p, 0, "hosts have a single port");
                &h.port
            }
            Node::Switch(s) => &s.ports[p],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowKey;

    fn pkt(size: u32, at_ms: u64) -> (Packet, Duration) {
        let flow = FlowKey::tcp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 80);
        (
            Packet::new(flow, size, 0, Duration::ZERO),
            Duration::from_millis(at_ms),
        )
    }

    #[test]
    fn host_rx_accounting() {
        let mut h = HostNode::new("h1", Ip::v4(10, 0, 0, 1));
        let (p, t) = pkt(1000, 100);
        h.record_rx(&p, t);
        let (p, t) = pkt(500, 200);
        h.record_rx(&p, t);
        assert_eq!(h.rx_packets, 2);
        assert_eq!(h.rx_bytes, 1500);
        assert_eq!(h.rx_log.len(), 2);
    }

    #[test]
    fn rx_bytes_between_is_half_open() {
        let mut h = HostNode::new("h1", Ip::v4(10, 0, 0, 1));
        for (size, at) in [(100, 100u64), (200, 200), (300, 300)] {
            let (p, t) = pkt(size, at);
            h.record_rx(&p, t);
        }
        assert_eq!(
            h.rx_bytes_between(Duration::from_millis(100), Duration::from_millis(300)),
            300
        );
        assert_eq!(
            h.rx_bytes_between(Duration::ZERO, Duration::from_secs(1)),
            600
        );
        assert_eq!(
            h.rx_bytes_between(Duration::from_millis(400), Duration::from_secs(1)),
            0
        );
    }

    #[test]
    fn switch_queue_len_reports_occupancy() {
        let mut s = SwitchNode::new("s1", 4, 10);
        assert_eq!(s.queue_len(2), 0);
        let (p, _) = pkt(100, 0);
        s.ports[2].queue.enqueue(p);
        assert_eq!(s.queue_len(2), 1);
    }

    #[test]
    #[should_panic(expected = "single port")]
    fn host_port_index_checked() {
        let mut n = Node::Host(HostNode::new("h", Ip::v4(1, 1, 1, 1)));
        n.port_mut(1);
    }

    #[test]
    fn node_name_and_ports() {
        let h = Node::Host(HostNode::new("h1", Ip::v4(1, 1, 1, 1)));
        let s = Node::Switch(SwitchNode::new("s1", 8, 10));
        assert_eq!(h.name(), "h1");
        assert_eq!(h.num_ports(), 1);
        assert_eq!(s.num_ports(), 8);
    }
}
