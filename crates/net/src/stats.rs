//! Time-series helpers for experiment plots.
//!
//! The figure harness turns packet logs and queue samples into the series
//! the paper plots: bytes-per-interval curves (Figure 3a), queue-length
//! evolutions (Figure 5a/5c).

use crate::node::RxRecord;
use std::time::Duration;

/// A sampled time series: `(t_seconds, value)` pairs in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// The samples.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample taken at `at`.
    pub fn push(&mut self, at: Duration, value: f64) {
        self.points.push((at.as_secs_f64(), value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).reduce(f64::max)
    }

    /// Mean value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Earliest time at which `pred` holds, or `None`.
    pub fn first_time_where(&self, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
        self.points.iter().find(|p| pred(p.1)).map(|p| p.0)
    }
}

/// Bucket a host receive log into bytes-per-interval over `[0, span)` —
/// Figure 3a's "bytes sent/received" curve.
pub fn rx_bytes_per_interval(log: &[RxRecord], interval: Duration, span: Duration) -> TimeSeries {
    assert!(!interval.is_zero(), "interval must be non-zero");
    let nbuckets = (span.as_secs_f64() / interval.as_secs_f64()).ceil() as usize;
    let mut buckets = vec![0u64; nbuckets.max(1)];
    for r in log {
        if r.at < span {
            let idx = (r.at.as_secs_f64() / interval.as_secs_f64()) as usize;
            if let Some(b) = buckets.get_mut(idx) {
                *b += r.size_bytes as u64;
            }
        }
    }
    let mut series = TimeSeries::new();
    for (i, &bytes) in buckets.iter().enumerate() {
        series.push(interval * (i as u32), bytes as f64);
    }
    series
}

/// Empirical CDF of a sample set: returns `(value, cumulative_fraction)`
/// pairs sorted by value — Figure 2b's processing-time CDF.
pub fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// The `q`-quantile (0..=1) of a sample set by nearest-rank, or `None` when
/// empty.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Ip};

    fn rec(at_ms: u64, size: u32) -> RxRecord {
        RxRecord {
            at: Duration::from_millis(at_ms),
            size_bytes: size,
            flow: FlowKey::tcp(Ip::v4(1, 1, 1, 1), 1, Ip::v4(2, 2, 2, 2), 2),
        }
    }

    #[test]
    fn bucketing_sums_per_interval() {
        let log = vec![rec(50, 100), rec(150, 200), rec(160, 50), rec(950, 10)];
        let s = rx_bytes_per_interval(&log, Duration::from_millis(100), Duration::from_secs(1));
        assert_eq!(s.len(), 10);
        assert_eq!(s.points[0].1, 100.0);
        assert_eq!(s.points[1].1, 250.0);
        assert_eq!(s.points[9].1, 10.0);
    }

    #[test]
    fn bucketing_ignores_records_past_span() {
        let log = vec![rec(50, 100), rec(5000, 999)];
        let s = rx_bytes_per_interval(&log, Duration::from_millis(100), Duration::from_secs(1));
        let total: f64 = s.points.iter().map(|p| p.1).sum();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let samples = [3.0, 1.0, 2.0, 2.0];
        let c = cdf(&samples);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[1].0 >= w[0].0 && w[1].1 >= w[0].1));
        assert_eq!(c.last().unwrap().1, 1.0);
        assert_eq!(c[0], (1.0, 0.25));
    }

    #[test]
    fn cdf_empty() {
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn quantiles() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(quantile(&samples, 0.5), Some(50.0));
        assert_eq!(quantile(&samples, 0.9), Some(90.0));
        assert_eq!(quantile(&samples, 1.0), Some(100.0));
        assert_eq!(quantile(&samples, 0.0), Some(1.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn series_helpers() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(Duration::from_secs(1), 10.0);
        s.push(Duration::from_secs(2), 30.0);
        s.push(Duration::from_secs(3), 20.0);
        assert_eq!(s.max(), Some(30.0));
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(s.first_time_where(|v| v > 15.0), Some(2.0));
        assert_eq!(s.first_time_where(|v| v > 99.0), None);
    }
}
