//! Packets and addressing.
//!
//! The virtual testbed moves [`Packet`]s — a 5-tuple flow key plus a size
//! and bookkeeping. IP addresses are IPv4-style `u32`s with a tiny helper
//! for readable test construction.

use std::fmt;
use std::time::Duration;

/// IANA protocol numbers used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// Anything else, by IANA number.
    Other(u8),
}

impl Proto {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Icmp => 1,
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Other(n) => n,
        }
    }

    /// From an IANA protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => Proto::Icmp,
            6 => Proto::Tcp,
            17 => Proto::Udp,
            other => Proto::Other(other),
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "tcp"),
            Proto::Udp => write!(f, "udp"),
            Proto::Icmp => write!(f, "icmp"),
            Proto::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// An IPv4-style address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip(pub u32);

impl Ip {
    /// Build from dotted-quad octets.
    pub const fn v4(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            v >> 24,
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

/// A flow 5-tuple, as the paper hashes for heavy-hitter detection (§5):
/// "source port, destination port, source IP, destination IP and protocol
/// type".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source address.
    pub src_ip: Ip,
    /// Destination address.
    pub dst_ip: Ip,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// A TCP flow key.
    pub fn tcp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Proto::Tcp,
        }
    }

    /// A UDP flow key.
    pub fn udp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Proto::Udp,
        }
    }

    /// The reverse direction of this flow.
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowKey,
    /// Total on-wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Per-flow sequence number (assigned by the generator).
    pub seq: u64,
    /// Simulation time at which the packet was created.
    pub created: Duration,
}

impl Packet {
    /// Construct a packet.
    pub fn new(flow: FlowKey, size_bytes: u32, seq: u64, created: Duration) -> Self {
        Self {
            flow,
            size_bytes,
            seq,
            created,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_numbers_roundtrip() {
        for p in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            assert_eq!(Proto::from_number(p.number()), p);
        }
        assert_eq!(Proto::Tcp.number(), 6);
        assert_eq!(Proto::Udp.number(), 17);
    }

    #[test]
    fn ip_display_dotted_quad() {
        assert_eq!(Ip::v4(10, 0, 0, 1).to_string(), "10.0.0.1");
        assert_eq!(Ip::v4(255, 255, 255, 255).to_string(), "255.255.255.255");
    }

    #[test]
    fn ip_v4_packs_octets() {
        assert_eq!(Ip::v4(1, 2, 3, 4).0, 0x01020304);
    }

    #[test]
    fn flow_reversed_swaps_endpoints() {
        let f = FlowKey::tcp(Ip::v4(10, 0, 0, 1), 1234, Ip::v4(10, 0, 0, 2), 80);
        let r = f.reversed();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn flow_display_readable() {
        let f = FlowKey::udp(Ip::v4(10, 0, 0, 1), 5000, Ip::v4(10, 0, 0, 2), 53);
        assert_eq!(f.to_string(), "10.0.0.1:5000 -> 10.0.0.2:53 (udp)");
    }
}
