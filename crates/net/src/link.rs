//! Links: rate-limited, fixed-latency, full-duplex pipes between node
//! ports.

use crate::ftable::PortId;
use crate::sim::NodeId;
use std::time::Duration;

/// Identifies a link in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortId,
}

/// A full-duplex point-to-point link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation latency.
    pub latency: Duration,
    /// Administratively up? (Failure injection flips this.)
    pub up: bool,
    /// Packets transmitted onto this link (both directions), lifetime.
    pub tx_packets: u64,
    /// Bytes transmitted onto this link (both directions), lifetime.
    pub tx_bytes: u64,
}

impl Link {
    /// Construct an up link.
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero.
    pub fn new(a: Endpoint, b: Endpoint, rate_bps: u64, latency: Duration) -> Self {
        assert!(rate_bps > 0, "link rate must be non-zero");
        Self {
            a,
            b,
            rate_bps,
            latency,
            up: true,
            tx_packets: 0,
            tx_bytes: 0,
        }
    }

    /// Fraction of the line rate consumed by traffic transmitted so far,
    /// over a window of `elapsed` simulated time (0.0 for a zero window).
    /// Can exceed 1.0 when the window undercounts serialization overlap.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.tx_bytes as f64 * 8.0) / (self.rate_bps as f64 * secs)
    }

    /// Serialization delay for `bytes` at the line rate.
    pub fn serialization_delay(&self, bytes: u32) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps as f64)
    }

    /// The endpoint opposite `from`, or `None` if `from` is not on this
    /// link.
    pub fn other_end(&self, from: Endpoint) -> Option<Endpoint> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: usize, p: usize) -> Endpoint {
        Endpoint {
            node: NodeId(n),
            port: p,
        }
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let l = Link::new(ep(0, 0), ep(1, 0), 10_000_000, Duration::from_micros(10));
        // 1500 B at 10 Mbps = 1.2 ms.
        let d = l.serialization_delay(1500);
        assert!((d.as_secs_f64() - 0.0012).abs() < 1e-9);
        assert_eq!(l.serialization_delay(0), Duration::ZERO);
    }

    #[test]
    fn other_end_resolves_both_directions() {
        let l = Link::new(ep(0, 1), ep(2, 3), 1_000_000, Duration::ZERO);
        assert_eq!(l.other_end(ep(0, 1)), Some(ep(2, 3)));
        assert_eq!(l.other_end(ep(2, 3)), Some(ep(0, 1)));
        assert_eq!(l.other_end(ep(9, 9)), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rate_panics() {
        Link::new(ep(0, 0), ep(1, 0), 0, Duration::ZERO);
    }
}
