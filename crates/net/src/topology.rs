//! Topology builders for the paper's testbeds.
//!
//! * [`fn@line`] — h1 — s1 — h2 (the port-knocking and queue-monitoring
//!   setups);
//! * [`rhomboid`] — the §6 load-balancing topology: "four switches
//!   connected in a rhomboid topology, with the two hosts attached to two
//!   opposite vertices of the rhombus";
//! * [`star`] — one switch, many hosts (the telemetry experiments).

use crate::network::Network;
use crate::packet::Ip;
use crate::sim::NodeId;
use std::time::Duration;

/// Handles to a line topology: `h1 — s1 — h2`.
#[derive(Debug, Clone, Copy)]
pub struct LineTopo {
    /// Left host (10.0.0.1).
    pub h1: NodeId,
    /// Right host (10.0.0.2).
    pub h2: NodeId,
    /// The switch. Port 0 faces `h1`, port 1 faces `h2`.
    pub s1: NodeId,
}

/// Build a line topology with the given link rate and latency.
pub fn line(net: &mut Network, rate_bps: u64, latency: Duration) -> LineTopo {
    line_rates(net, rate_bps, rate_bps, latency)
}

/// Build a line topology with distinct ingress (`h1—s1`) and egress
/// (`s1—h2`) rates. A faster ingress makes the switch egress queue the
/// bottleneck — the configuration the paper's §6 queue experiments need
/// (in Mininet the sender's NIC was not the bottleneck either).
pub fn line_rates(
    net: &mut Network,
    ingress_bps: u64,
    egress_bps: u64,
    latency: Duration,
) -> LineTopo {
    let h1 = net.add_host("h1", Ip::v4(10, 0, 0, 1));
    let h2 = net.add_host("h2", Ip::v4(10, 0, 0, 2));
    let s1 = net.add_switch("s1", 2);
    net.connect(h1, 0, s1, 0, ingress_bps, latency);
    net.connect(h2, 0, s1, 1, egress_bps, latency);
    LineTopo { h1, h2, s1 }
}

/// Handles to the rhomboid topology of §6:
///
/// ```text
///            s_top
///           /     \
/// h_src — s_in     s_out — h_dst
///           \     /
///            s_bot
/// ```
///
/// `s_in` port map: 0 = h_src, 1 = s_top, 2 = s_bot.
/// `s_out` port map: 0 = h_dst, 1 = s_top, 2 = s_bot.
/// `s_top`/`s_bot` port map: 0 = s_in side, 1 = s_out side.
#[derive(Debug, Clone, Copy)]
pub struct RhomboidTopo {
    /// Traffic source (10.0.0.1).
    pub h_src: NodeId,
    /// Traffic sink (10.0.0.2).
    pub h_dst: NodeId,
    /// Ingress vertex.
    pub s_in: NodeId,
    /// Upper path vertex.
    pub s_top: NodeId,
    /// Lower path vertex.
    pub s_bot: NodeId,
    /// Egress vertex.
    pub s_out: NodeId,
}

/// Build the rhomboid with uniform link rate/latency.
pub fn rhomboid(net: &mut Network, rate_bps: u64, latency: Duration) -> RhomboidTopo {
    rhomboid_rates(net, rate_bps, rate_bps, latency)
}

/// Build the rhomboid with distinct access (host↔switch) and core
/// (switch↔switch) rates. Fast access links make the rhombus paths the
/// bottleneck, so queues build at `s_in` — the §6 load-balancing setup.
pub fn rhomboid_rates(
    net: &mut Network,
    access_bps: u64,
    core_bps: u64,
    latency: Duration,
) -> RhomboidTopo {
    let h_src = net.add_host("h_src", Ip::v4(10, 0, 0, 1));
    let h_dst = net.add_host("h_dst", Ip::v4(10, 0, 0, 2));
    let s_in = net.add_switch("s_in", 3);
    let s_top = net.add_switch("s_top", 2);
    let s_bot = net.add_switch("s_bot", 2);
    let s_out = net.add_switch("s_out", 3);
    net.connect(h_src, 0, s_in, 0, access_bps, latency);
    net.connect(s_in, 1, s_top, 0, core_bps, latency);
    net.connect(s_in, 2, s_bot, 0, core_bps, latency);
    net.connect(s_top, 1, s_out, 1, core_bps, latency);
    net.connect(s_bot, 1, s_out, 2, core_bps, latency);
    net.connect(h_dst, 0, s_out, 0, access_bps, latency);
    RhomboidTopo {
        h_src,
        h_dst,
        s_in,
        s_top,
        s_bot,
        s_out,
    }
}

/// Handles to a star topology: `num_hosts` hosts around one switch. Host
/// `i` has IP `10.0.0.(i+1)` and sits on switch port `i`.
#[derive(Debug, Clone)]
pub struct StarTopo {
    /// The hosts, in port order.
    pub hosts: Vec<NodeId>,
    /// The central switch.
    pub switch: NodeId,
}

/// Handles to a two-tier leaf-spine fabric: every leaf connects to every
/// spine, hosts hang off the leaves — the shape a 100+-switch datacenter
/// deployment (one acoustic cell per rack row of leaves) actually has.
#[derive(Debug, Clone)]
pub struct LeafSpineTopo {
    /// Spine switches. Spine `s`'s port `l` faces leaf `l`.
    pub spines: Vec<NodeId>,
    /// Leaf switches. Leaf `l`'s ports `0..hosts_per_leaf` face its
    /// hosts; port `hosts_per_leaf + s` faces spine `s`.
    pub leaves: Vec<NodeId>,
    /// Hosts, leaf-major: `hosts[l * hosts_per_leaf + h]` is host `h` on
    /// leaf `l`, with IP `10.(l/250).(l%250 + 1).(h+1)` — leaves spill
    /// into the second octet 250 at a time, so the first 250 leaves keep
    /// the historical `10.0.(l+1).(h+1)` addresses.
    pub hosts: Vec<NodeId>,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
}

impl LeafSpineTopo {
    /// Host `h` on leaf `l`.
    pub fn host(&self, leaf: usize, h: usize) -> NodeId {
        self.hosts[leaf * self.hosts_per_leaf + h]
    }

    /// The IP assigned to host `h` on leaf `l`.
    pub fn host_ip(&self, leaf: usize, h: usize) -> Ip {
        Ip::v4(10, (leaf / 250) as u8, (leaf % 250 + 1) as u8, (h + 1) as u8)
    }

    /// The leaf port facing spine `s`.
    pub fn uplink_port(&self, s: usize) -> usize {
        self.hosts_per_leaf + s
    }
}

/// Build a leaf-spine fabric: `leaves × spines` core links at `core_bps`,
/// `leaves × hosts_per_leaf` access links at `access_bps`.
///
/// # Panics
/// Panics if any tier count is zero, `hosts_per_leaf` exceeds 250 (one
/// address octet), or `leaves` exceeds 62 500 (250 per second-octet
/// block, 250 blocks).
pub fn leaf_spine(
    net: &mut Network,
    spines: usize,
    leaves: usize,
    hosts_per_leaf: usize,
    access_bps: u64,
    core_bps: u64,
    latency: Duration,
) -> LeafSpineTopo {
    assert!(spines >= 1, "need at least one spine");
    assert!((1..=62_500).contains(&leaves), "leaves out of range");
    assert!(
        (1..=250).contains(&hosts_per_leaf),
        "hosts_per_leaf out of range"
    );
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|s| net.add_switch(format!("spine{}", s + 1), leaves))
        .collect();
    let mut leaf_ids = Vec::with_capacity(leaves);
    let mut host_ids = Vec::with_capacity(leaves * hosts_per_leaf);
    for l in 0..leaves {
        let leaf = net.add_switch(format!("leaf{}", l + 1), hosts_per_leaf + spines);
        for h in 0..hosts_per_leaf {
            let ip = Ip::v4(10, (l / 250) as u8, (l % 250 + 1) as u8, (h + 1) as u8);
            let host = net.add_host(format!("h{}-{}", l + 1, h + 1), ip);
            net.connect(host, 0, leaf, h, access_bps, latency);
            host_ids.push(host);
        }
        for (s, &spine) in spine_ids.iter().enumerate() {
            net.connect(leaf, hosts_per_leaf + s, spine, l, core_bps, latency);
        }
        leaf_ids.push(leaf);
    }
    LeafSpineTopo {
        spines: spine_ids,
        leaves: leaf_ids,
        hosts: host_ids,
        hosts_per_leaf,
    }
}

/// Build a star topology.
///
/// # Panics
/// Panics if `num_hosts` is zero or exceeds 250 (the /24 we address from).
pub fn star(net: &mut Network, num_hosts: usize, rate_bps: u64, latency: Duration) -> StarTopo {
    assert!((1..=250).contains(&num_hosts), "num_hosts out of range");
    let switch = net.add_switch("s1", num_hosts);
    let hosts: Vec<NodeId> = (0..num_hosts)
        .map(|i| {
            let h = net.add_host(format!("h{}", i + 1), Ip::v4(10, 0, 0, (i + 1) as u8));
            net.connect(h, 0, switch, i, rate_bps, latency);
            h
        })
        .collect();
    StarTopo { hosts, switch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftable::{Action, Match, Rule};
    use crate::packet::FlowKey;
    use crate::traffic::TrafficPattern;

    const MBPS: u64 = 1_000_000;

    #[test]
    fn line_carries_traffic() {
        let mut net = Network::new();
        let t = line(&mut net, 10 * MBPS, Duration::from_micros(10));
        net.install_rule(
            t.s1,
            Rule {
                mat: Match::dst(Ip::v4(10, 0, 0, 2)),
                priority: 1,
                action: Action::Forward(1),
            },
        );
        net.attach_generator(
            t.h1,
            TrafficPattern::Cbr {
                flow: FlowKey::udp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 2),
                pps: 100.0,
                size: 500,
                start: Duration::ZERO,
                stop: Duration::from_millis(100),
            },
        );
        net.drain();
        assert_eq!(net.host(t.h2).rx_packets, 10);
    }

    #[test]
    fn rhomboid_has_two_disjoint_paths() {
        let mut net = Network::new();
        let t = rhomboid(&mut net, 10 * MBPS, Duration::from_micros(10));
        let dst = Match::dst(Ip::v4(10, 0, 0, 2));
        // Route via top only.
        net.install_rule(
            t.s_in,
            Rule {
                mat: dst,
                priority: 1,
                action: Action::Forward(1),
            },
        );
        net.install_rule(
            t.s_top,
            Rule {
                mat: dst,
                priority: 1,
                action: Action::Forward(1),
            },
        );
        net.install_rule(
            t.s_out,
            Rule {
                mat: dst,
                priority: 1,
                action: Action::Forward(0),
            },
        );
        net.attach_generator(
            t.h_src,
            TrafficPattern::Cbr {
                flow: FlowKey::udp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 2),
                pps: 50.0,
                size: 500,
                start: Duration::ZERO,
                stop: Duration::from_millis(200),
            },
        );
        net.drain();
        assert_eq!(net.host(t.h_dst).rx_packets, 10);
        assert_eq!(net.switch(t.s_top).rx_packets, 10);
        assert_eq!(net.switch(t.s_bot).rx_packets, 0);

        // Now also route via bottom and verify the other path works too.
        net.install_rule(
            t.s_bot,
            Rule {
                mat: dst,
                priority: 1,
                action: Action::Forward(1),
            },
        );
        net.install_rule(
            t.s_in,
            Rule {
                mat: dst,
                priority: 2,
                action: Action::Forward(2),
            },
        );
        net.attach_generator(
            t.h_src,
            TrafficPattern::Cbr {
                flow: FlowKey::udp(Ip::v4(10, 0, 0, 1), 1, Ip::v4(10, 0, 0, 2), 2),
                pps: 50.0,
                size: 500,
                start: net.now(),
                stop: net.now() + Duration::from_millis(200),
            },
        );
        net.drain();
        assert_eq!(net.switch(t.s_bot).rx_packets, 10);
        assert_eq!(net.host(t.h_dst).rx_packets, 20);
    }

    #[test]
    fn star_addresses_and_ports_line_up() {
        let mut net = Network::new();
        let t = star(&mut net, 5, MBPS, Duration::ZERO);
        assert_eq!(t.hosts.len(), 5);
        assert_eq!(net.host(t.hosts[2]).ip, Ip::v4(10, 0, 0, 3));
        assert_eq!(net.switch(t.switch).ports.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn star_rejects_zero_hosts() {
        let mut net = Network::new();
        star(&mut net, 0, MBPS, Duration::ZERO);
    }

    #[test]
    fn leaf_spine_carries_traffic_across_the_spine() {
        let mut net = Network::new();
        let t = leaf_spine(&mut net, 2, 4, 1, 10 * MBPS, 40 * MBPS, Duration::from_micros(10));
        let dst = t.host_ip(1, 0); // h on leaf 2
        // leaf1 → spine1 → leaf2 → host.
        net.install_rule(
            t.leaves[0],
            Rule {
                mat: Match::dst(dst),
                priority: 1,
                action: Action::Forward(t.uplink_port(0)),
            },
        );
        net.install_rule(
            t.spines[0],
            Rule {
                mat: Match::dst(dst),
                priority: 1,
                action: Action::Forward(1), // spine port l faces leaf l
            },
        );
        net.install_rule(
            t.leaves[1],
            Rule {
                mat: Match::dst(dst),
                priority: 1,
                action: Action::Forward(0),
            },
        );
        net.attach_generator(
            t.host(0, 0),
            TrafficPattern::Cbr {
                flow: FlowKey::udp(t.host_ip(0, 0), 1, dst, 2),
                pps: 100.0,
                size: 500,
                start: Duration::ZERO,
                stop: Duration::from_millis(100),
            },
        );
        net.drain();
        assert_eq!(net.host(t.host(1, 0)).rx_packets, 10);
        assert_eq!(net.switch(t.spines[0]).rx_packets, 10);
        assert_eq!(net.switch(t.spines[1]).rx_packets, 0);
    }

    #[test]
    fn leaf_spine_scales_past_one_hundred_switches() {
        let mut net = Network::new();
        let t = leaf_spine(&mut net, 8, 96, 1, MBPS, 4 * MBPS, Duration::from_micros(10));
        assert_eq!(t.spines.len() + t.leaves.len(), 104);
        assert_eq!(t.hosts.len(), 96);
        // Every leaf carries its host port plus one uplink per spine.
        assert_eq!(net.switch(t.leaves[95]).ports.len(), 1 + 8);
        assert_eq!(net.switch(t.spines[0]).ports.len(), 96);
        assert_eq!(net.host(t.host(95, 0)).ip, Ip::v4(10, 0, 96, 1));
    }

    #[test]
    fn leaf_spine_addresses_past_250_leaves() {
        let mut net = Network::new();
        let t = leaf_spine(&mut net, 2, 260, 2, MBPS, 4 * MBPS, Duration::from_micros(10));
        assert_eq!(t.leaves.len(), 260);
        assert_eq!(t.hosts.len(), 520);
        // The first 250 leaves keep their historical third-octet
        // addresses; leaves beyond spill into the second octet.
        assert_eq!(t.host_ip(0, 0), Ip::v4(10, 0, 1, 1));
        assert_eq!(t.host_ip(249, 1), Ip::v4(10, 0, 250, 2));
        assert_eq!(t.host_ip(250, 0), Ip::v4(10, 1, 1, 1));
        assert_eq!(t.host_ip(259, 1), Ip::v4(10, 1, 10, 2));
        assert_eq!(net.host(t.host(259, 1)).ip, t.host_ip(259, 1));
        // No two hosts collide.
        let mut ips: Vec<Ip> = (0..260)
            .flat_map(|l| (0..2).map(move |h| (l, h)))
            .map(|(l, h)| t.host_ip(l, h))
            .collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 520);
    }

    #[test]
    #[should_panic(expected = "at least one spine")]
    fn leaf_spine_rejects_zero_spines() {
        let mut net = Network::new();
        leaf_spine(&mut net, 0, 4, 1, MBPS, MBPS, Duration::ZERO);
    }
}
