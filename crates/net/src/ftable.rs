//! Match-action flow tables.
//!
//! The SDN half of the paper: switches forward only according to installed
//! rules; the MDN controller reacts to sounds by installing new ones (the
//! port-knocking FSM opens a port by "adding a flow table entry at the
//! switch", and the load balancer "sends an OpenFlow flow-MOD message so
//! that the source traffic gets split across two ports").

use crate::flow::hash_flow;
use crate::packet::{FlowKey, Ip, Proto};

/// A port index on a node.
pub type PortId = usize;

/// Wildcardable match over the flow 5-tuple plus ingress port.
/// `None` matches anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Match {
    /// Ingress port constraint.
    pub in_port: Option<PortId>,
    /// Source address constraint.
    pub src_ip: Option<Ip>,
    /// Destination address constraint.
    pub dst_ip: Option<Ip>,
    /// Source transport port constraint.
    pub src_port: Option<u16>,
    /// Destination transport port constraint.
    pub dst_port: Option<u16>,
    /// Protocol constraint.
    pub proto: Option<Proto>,
}

impl Match {
    /// Match everything.
    pub const ANY: Match = Match {
        in_port: None,
        src_ip: None,
        dst_ip: None,
        src_port: None,
        dst_port: None,
        proto: None,
    };

    /// Match a destination address.
    pub fn dst(ip: Ip) -> Self {
        Match {
            dst_ip: Some(ip),
            ..Match::ANY
        }
    }

    /// Match a destination transport port (the port-knocking rule shape).
    pub fn dst_transport_port(port: u16) -> Self {
        Match {
            dst_port: Some(port),
            ..Match::ANY
        }
    }

    /// Match an exact flow.
    pub fn exact(flow: &FlowKey) -> Self {
        Match {
            in_port: None,
            src_ip: Some(flow.src_ip),
            dst_ip: Some(flow.dst_ip),
            src_port: Some(flow.src_port),
            dst_port: Some(flow.dst_port),
            proto: Some(flow.proto),
        }
    }

    /// Does this match cover `(in_port, flow)`?
    pub fn matches(&self, in_port: PortId, flow: &FlowKey) -> bool {
        self.in_port.is_none_or(|p| p == in_port)
            && self.src_ip.is_none_or(|v| v == flow.src_ip)
            && self.dst_ip.is_none_or(|v| v == flow.dst_ip)
            && self.src_port.is_none_or(|v| v == flow.src_port)
            && self.dst_port.is_none_or(|v| v == flow.dst_port)
            && self.proto.is_none_or(|v| v == flow.proto)
    }
}

/// What to do with a matching packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Forward out one port.
    Forward(PortId),
    /// Drop the packet.
    Drop,
    /// Hash-based split across several ports (OpenFlow select group): the
    /// flow hash picks the member, so one flow stays on one path.
    SplitByFlow(Vec<PortId>),
    /// Per-packet round-robin across several ports (finer-grained split,
    /// what the paper's Figure 5a load balancer effectively achieves on a
    /// single elephant flow).
    SplitRoundRobin(Vec<PortId>),
}

/// One installed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Match condition.
    pub mat: Match,
    /// Higher wins.
    pub priority: u16,
    /// Action on match.
    pub action: Action,
}

/// The forwarding decision a table lookup produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Send out this port.
    Forward(PortId),
    /// Drop the packet.
    Drop,
    /// No rule matched (table-miss); the switch applies its default policy.
    Miss,
}

/// A priority-ordered flow table.
///
/// ```
/// use mdn_net::ftable::{FlowTable, Rule, Match, Action, Decision};
/// use mdn_net::packet::{FlowKey, Ip};
///
/// let mut table = FlowTable::new();
/// table.install(Rule { mat: Match::ANY, priority: 0, action: Action::Drop });
/// table.install(Rule {
///     mat: Match::dst_transport_port(80),
///     priority: 10,
///     action: Action::Forward(2),
/// });
/// let web = FlowKey::tcp(Ip::v4(10, 0, 0, 1), 40_000, Ip::v4(10, 0, 0, 2), 80);
/// assert_eq!(table.lookup(0, &web), Decision::Forward(2));
/// assert_eq!(table.lookup(0, &web.reversed()), Decision::Drop);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    rules: Vec<Rule>,
    rr_state: std::collections::HashMap<usize, usize>,
    /// Lookup counter (all lookups).
    pub lookups: u64,
    /// Table-miss counter.
    pub misses: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a rule. Rules are kept sorted by descending priority;
    /// among equal priorities, the earliest installed wins.
    pub fn install(&mut self, rule: Rule) {
        let pos = self
            .rules
            .iter()
            .position(|r| r.priority < rule.priority)
            .unwrap_or(self.rules.len());
        self.rules.insert(pos, rule);
    }

    /// Remove every rule whose match equals `mat`. Returns how many were
    /// removed.
    pub fn remove(&mut self, mat: &Match) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| &r.mat != mat);
        before - self.rules.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The installed rules in match order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Look up the forwarding decision for `(in_port, flow)`.
    ///
    /// Mutable because round-robin group actions advance their member
    /// pointer per packet, mirroring group-bucket state in a real switch.
    pub fn lookup(&mut self, in_port: PortId, flow: &FlowKey) -> Decision {
        self.lookups += 1;
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.mat.matches(in_port, flow) {
                return match &rule.action {
                    Action::Forward(p) => Decision::Forward(*p),
                    Action::Drop => Decision::Drop,
                    Action::SplitByFlow(ports) => {
                        debug_assert!(!ports.is_empty());
                        let i = (hash_flow(flow) % ports.len() as u64) as usize;
                        Decision::Forward(ports[i])
                    }
                    Action::SplitRoundRobin(ports) => {
                        debug_assert!(!ports.is_empty());
                        let state = self.rr_state.entry(idx).or_insert(0);
                        let i = *state % ports.len();
                        *state = state.wrapping_add(1);
                        Decision::Forward(ports[i])
                    }
                };
            }
        }
        self.misses += 1;
        Decision::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(dst_port: u16) -> FlowKey {
        FlowKey::tcp(Ip::v4(10, 0, 0, 1), 40_000, Ip::v4(10, 0, 0, 2), dst_port)
    }

    #[test]
    fn empty_table_misses() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(0, &flow(80)), Decision::Miss);
        assert_eq!(t.misses, 1);
        assert_eq!(t.lookups, 1);
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::ANY,
            priority: 0,
            action: Action::Drop,
        });
        t.install(Rule {
            mat: Match::dst_transport_port(80),
            priority: 10,
            action: Action::Forward(2),
        });
        assert_eq!(t.lookup(0, &flow(80)), Decision::Forward(2));
        assert_eq!(t.lookup(0, &flow(443)), Decision::Drop);
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::ANY,
            priority: 5,
            action: Action::Forward(1),
        });
        t.install(Rule {
            mat: Match::ANY,
            priority: 5,
            action: Action::Forward(2),
        });
        assert_eq!(t.lookup(0, &flow(80)), Decision::Forward(1));
    }

    #[test]
    fn in_port_constraint() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match {
                in_port: Some(1),
                ..Match::ANY
            },
            priority: 1,
            action: Action::Forward(9),
        });
        assert_eq!(t.lookup(1, &flow(80)), Decision::Forward(9));
        assert_eq!(t.lookup(2, &flow(80)), Decision::Miss);
    }

    #[test]
    fn exact_match_covers_only_that_flow() {
        let f = flow(80);
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::exact(&f),
            priority: 1,
            action: Action::Forward(3),
        });
        assert_eq!(t.lookup(0, &f), Decision::Forward(3));
        assert_eq!(t.lookup(0, &f.reversed()), Decision::Miss);
        assert_eq!(t.lookup(0, &flow(81)), Decision::Miss);
    }

    #[test]
    fn split_by_flow_is_sticky_per_flow() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::ANY,
            priority: 1,
            action: Action::SplitByFlow(vec![1, 2]),
        });
        let f = flow(80);
        let first = t.lookup(0, &f);
        for _ in 0..10 {
            assert_eq!(t.lookup(0, &f), first);
        }
    }

    #[test]
    fn split_by_flow_spreads_flows() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::ANY,
            priority: 1,
            action: Action::SplitByFlow(vec![1, 2]),
        });
        let mut seen = std::collections::HashSet::new();
        for p in 0..32u16 {
            if let Decision::Forward(port) = t.lookup(0, &flow(1000 + p)) {
                seen.insert(port);
            }
        }
        assert_eq!(seen.len(), 2, "both ports should be used");
    }

    #[test]
    fn round_robin_alternates_per_packet() {
        let mut t = FlowTable::new();
        t.install(Rule {
            mat: Match::ANY,
            priority: 1,
            action: Action::SplitRoundRobin(vec![1, 2]),
        });
        let f = flow(80);
        let seq: Vec<Decision> = (0..4).map(|_| t.lookup(0, &f)).collect();
        assert_eq!(
            seq,
            vec![
                Decision::Forward(1),
                Decision::Forward(2),
                Decision::Forward(1),
                Decision::Forward(2)
            ]
        );
    }

    #[test]
    fn remove_by_match() {
        let mut t = FlowTable::new();
        let m = Match::dst_transport_port(80);
        t.install(Rule {
            mat: m,
            priority: 1,
            action: Action::Forward(1),
        });
        t.install(Rule {
            mat: Match::ANY,
            priority: 0,
            action: Action::Drop,
        });
        assert_eq!(t.remove(&m), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0, &flow(80)), Decision::Drop);
    }
}
