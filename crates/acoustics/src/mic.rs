//! Microphone model.
//!
//! The paper tests "different types of microphones (from very cheap to
//! fairly expensive)". A microphone here is an ADC front-end: it resamples
//! the pressure signal at the listener position to its own capture rate,
//! adds its self-noise floor, applies a response band, and clips at full
//! scale.

use mdn_audio::noise::white_noise;
use mdn_audio::resample::resample;
use mdn_audio::signal::spl_to_amplitude;
use mdn_audio::Signal;

/// A microphone/ADC model.
#[derive(Debug, Clone)]
pub struct Microphone {
    /// Human-readable name.
    pub name: &'static str,
    /// Capture sample rate in Hz.
    pub sample_rate: u32,
    /// Self-noise floor in dB SPL (electronics hiss added to every capture).
    pub noise_floor_spl: f64,
    /// Usable response band `(lo_hz, hi_hz)`; energy outside is attenuated
    /// by simple one-pole filters.
    pub band: (f64, f64),
    /// Seed for the self-noise generator (captures are deterministic).
    pub noise_seed: u64,
}

impl Microphone {
    /// A very cheap electret capsule: 16 kHz capture, 35 dB SPL self-noise,
    /// narrow band.
    pub fn cheap() -> Self {
        Self {
            name: "cheap-electret",
            sample_rate: 16_000,
            noise_floor_spl: 35.0,
            band: (150.0, 7_000.0),
            noise_seed: 0x31C,
        }
    }

    /// A decent USB measurement mic: 44.1 kHz, 18 dB SPL self-noise.
    pub fn measurement() -> Self {
        Self {
            name: "measurement",
            sample_rate: 44_100,
            noise_floor_spl: 18.0,
            band: (40.0, 20_000.0),
            noise_seed: 0xA11CE,
        }
    }

    /// An ultrasound-capable instrumentation mic (96 kHz capture) for the
    /// §8 extension.
    pub fn ultrasound() -> Self {
        Self {
            name: "ultrasound",
            sample_rate: 96_000,
            noise_floor_spl: 22.0,
            band: (40.0, 45_000.0),
            noise_seed: 0xBA7,
        }
    }

    /// Capture a pressure signal: band-limit, resample to the ADC rate, add
    /// the self-noise floor, clip at full scale.
    pub fn capture(&self, pressure: &Signal) -> Signal {
        let mut sig = band_limit(pressure, self.band.0, self.band.1);
        sig = resample(&sig, self.sample_rate);
        if !sig.is_empty() {
            let floor = white_noise(
                sig.duration(),
                spl_to_amplitude(self.noise_floor_spl),
                self.sample_rate,
                self.noise_seed,
            );
            sig.mix_at(&floor, 0);
        }
        sig.clip();
        sig
    }
}

/// Band-limit a signal with cascaded one-pole high/low-pass filters.
fn band_limit(signal: &Signal, lo_hz: f64, hi_hz: f64) -> Signal {
    let sr = signal.sample_rate() as f64;
    let dt = 1.0 / sr;
    let alpha = |fc: f64| {
        let rc = 1.0 / (2.0 * std::f64::consts::PI * fc);
        dt / (rc + dt)
    };
    let a_lo = alpha(lo_hz.max(1.0));
    let a_hi = alpha(hi_hz.min(sr / 2.0 - 1.0));
    let mut lp_state = 0.0f64; // tracks low-frequency content (to subtract)
    let mut out_state = 0.0f64; // lowpass at the upper cutoff
    let mut out = Vec::with_capacity(signal.len());
    for &x in signal.samples() {
        lp_state += a_lo * (x as f64 - lp_state);
        let highpassed = x as f64 - lp_state;
        out_state += a_hi * (highpassed - out_state);
        out.push(out_state as f32);
    }
    Signal::from_samples(out, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdn_audio::spectral::Spectrum;
    use mdn_audio::synth::Tone;
    use std::time::Duration;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, spl: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), spl_to_amplitude(spl)).render(SR)
    }

    #[test]
    fn capture_resamples_to_adc_rate() {
        let mic = Microphone::cheap();
        let cap = mic.capture(&tone(1000.0, 100, 60.0));
        assert_eq!(cap.sample_rate(), 16_000);
        assert!((cap.duration().as_secs_f64() - 0.1).abs() < 0.01);
    }

    #[test]
    fn in_band_tone_survives_capture() {
        let mic = Microphone::measurement();
        let cap = mic.capture(&tone(1000.0, 200, 60.0));
        let spec = Spectrum::of(&cap);
        let peaks = spec.peaks(spl_to_amplitude(50.0), 50.0);
        assert!(!peaks.is_empty(), "tone lost in capture");
        assert!((peaks[0].freq_hz - 1000.0).abs() < 10.0);
    }

    #[test]
    fn out_of_band_tone_attenuated_by_cheap_mic() {
        let mic = Microphone::cheap();
        // 20 Hz is far below the cheap mic's 150 Hz corner. Compare the
        // captured tone energy at its own frequency against in-band.
        let low = mic.capture(&tone(20.0, 500, 70.0));
        let mid = mic.capture(&tone(1000.0, 500, 70.0));
        let low_mag = Spectrum::of(&low).magnitude_at(20.0);
        let mid_mag = Spectrum::of(&mid).magnitude_at(1000.0);
        assert!(mid_mag > 5.0 * low_mag, "mid {mid_mag} low {low_mag}");
    }

    #[test]
    fn noise_floor_present_in_silence() {
        let mic = Microphone::measurement();
        let cap = mic.capture(&Signal::silence(Duration::from_millis(500), SR));
        let spl = cap.rms_spl();
        // Should land near the configured floor (within the band-limit loss).
        assert!(spl > 5.0 && spl < 25.0, "floor captured at {spl} dB SPL");
    }

    #[test]
    fn capture_is_deterministic() {
        let mic = Microphone::measurement();
        let sig = tone(700.0, 100, 60.0);
        assert_eq!(mic.capture(&sig).samples(), mic.capture(&sig).samples());
    }

    #[test]
    fn loud_input_is_clipped() {
        let mic = Microphone::measurement();
        let loud = tone(1000.0, 100, 130.0); // 30 dB over full scale
        let cap = mic.capture(&loud);
        assert!(cap.peak() <= 1.0);
    }

    #[test]
    fn empty_input_empty_output() {
        let mic = Microphone::cheap();
        assert!(mic.capture(&Signal::empty(SR)).is_empty());
    }
}
