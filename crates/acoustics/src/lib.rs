//! # mdn-acoustics — the physical channel for Music-Defined Networking
//!
//! Models the hardware half of the paper's testbed: the speakers wired to
//! each switch's Raspberry Pi, the microphones the MDN controller listens
//! through, the air in between, and the room's ambient noise.
//!
//! * [`speaker`] — speaker response band, 30 ms tone floor, level clamping;
//! * [`mic`] — microphone ADC models (cheap / measurement / ultrasound);
//! * [`medium`] — spherical spreading, air absorption, propagation delay;
//! * [`ambient`] — datacenter / office / quiet noise beds at calibrated SPL;
//! * [`scene`] — schedule emissions, render or capture at any listener
//!   position;
//! * [`faults`] — injectable acoustic failures: speaker dropouts, mic dead
//!   intervals, noise bursts.
//!
//! ```
//! use mdn_acoustics::{scene::Scene, speaker::{Speaker, ToneRequest}, mic::Microphone, medium::Pos, Window};
//! use std::time::Duration;
//!
//! let mut scene = Scene::quiet(44_100);
//! let speaker = Speaker::cheap();
//! let tone = speaker
//!     .play(ToneRequest { freq_hz: 700.0, duration: Duration::from_millis(50), level_spl: 60.0 }, 44_100)
//!     .unwrap();
//! scene.add(Pos::ORIGIN, Duration::ZERO, tone, "switch-0");
//! let heard = scene.capture(&Microphone::measurement(), Pos::new(0.5, 0.0, 0.0), Window::from_start(Duration::from_millis(60)));
//! assert!(!heard.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ambient;
pub mod faults;
pub mod medium;
pub mod mic;
pub mod scene;
pub mod speaker;

pub use ambient::AmbientProfile;
pub use faults::{SceneFaultPlan, Window};
pub use medium::Pos;
pub use mic::Microphone;
pub use scene::Scene;
pub use speaker::{Speaker, ToneRequest};
