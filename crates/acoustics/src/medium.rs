//! Air propagation.
//!
//! Point-source spherical spreading: amplitude falls as `1/r` relative to
//! the 1 m reference distance at which speakers are calibrated, and sound
//! travels at 343 m/s, so distant sources arrive late. High-frequency air
//! absorption is modeled as a gentle per-metre dB/kHz loss — enough to make
//! the paper's "close-range, single-hop" caveat measurable.

/// Speed of sound in air at ~20 °C, m/s.
pub const SPEED_OF_SOUND: f64 = 343.0;

/// Reference distance (m) at which speaker output levels are specified.
pub const REFERENCE_DISTANCE: f64 = 1.0;

/// Closest modelled approach (m): inside this the source is no longer a
/// point and the inverse law stops applying.
pub const NEAR_FIELD_LIMIT: f64 = 0.05;

/// Air absorption coefficient: extra attenuation in dB per metre per kHz.
/// A coarse flat-weather approximation of ISO 9613-1.
pub const ABSORPTION_DB_PER_M_PER_KHZ: f64 = 0.012;

/// A position in metres. The testbeds are rack-scale so a flat 3-D point is
/// plenty.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pos {
    /// x in metres.
    pub x: f64,
    /// y in metres.
    pub y: f64,
    /// z in metres.
    pub z: f64,
}

impl Pos {
    /// Construct a position.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The origin.
    pub const ORIGIN: Pos = Pos::new(0.0, 0.0, 0.0);

    /// Euclidean distance to another position, metres.
    pub fn distance(&self, other: &Pos) -> f64 {
        let (dx, dy, dz) = (self.x - other.x, self.y - other.y, self.z - other.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Spherical-spreading amplitude gain at `distance` metres: `1/r` relative
/// to the 1 m reference, so a closely-placed microphone (the paper's §7
/// answer) genuinely gains level. Clamped at [`NEAR_FIELD_LIMIT`].
#[inline]
pub fn spreading_gain(distance: f64) -> f64 {
    REFERENCE_DISTANCE / distance.max(NEAR_FIELD_LIMIT)
}

/// Frequency-dependent air absorption gain over `distance` metres at
/// `freq_hz`.
#[inline]
pub fn absorption_gain(distance: f64, freq_hz: f64) -> f64 {
    let db = ABSORPTION_DB_PER_M_PER_KHZ * distance.max(0.0) * (freq_hz / 1000.0);
    10f64.powf(-db / 20.0)
}

/// Combined propagation gain (spreading × absorption) for a tone at
/// `freq_hz` over `distance` metres. For broadband signals the scene uses
/// the spreading term only (absorption is small at rack scale).
#[inline]
pub fn propagation_gain(distance: f64, freq_hz: f64) -> f64 {
    spreading_gain(distance) * absorption_gain(distance, freq_hz)
}

/// Propagation delay in seconds over `distance` metres.
#[inline]
pub fn propagation_delay_s(distance: f64) -> f64 {
    distance.max(0.0) / SPEED_OF_SOUND
}

/// Amplitude a source of peak amplitude `source_amplitude` (referenced to
/// [`REFERENCE_DISTANCE`]) presents at `distance` metres under the
/// spreading law alone — the exact attenuation the scene renderer applies
/// to emissions, so cross-cell interference bounds computed with this
/// query hold for rendered audio, not just on paper.
#[inline]
pub fn incident_amplitude(source_amplitude: f64, distance: f64) -> f64 {
    source_amplitude * spreading_gain(distance)
}

/// Inverse of [`incident_amplitude`]: the distance beyond which a source
/// of peak amplitude `source_amplitude` lands below `threshold` — the
/// *reuse distance* for spatial frequency reuse across acoustic cells.
/// Two cells may share a tone slot when they are farther apart than this.
///
/// # Panics
/// Panics unless `threshold` is positive.
#[inline]
pub fn reuse_distance(source_amplitude: f64, threshold: f64) -> f64 {
    assert!(threshold > 0.0, "reuse threshold must be positive");
    (source_amplitude * REFERENCE_DISTANCE / threshold).max(NEAR_FIELD_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Pos::new(0.0, 0.0, 0.0);
        let b = Pos::new(3.0, 4.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gain_is_unity_at_reference_and_rises_closer() {
        assert_eq!(spreading_gain(1.0), 1.0);
        assert!((spreading_gain(0.5) - 2.0).abs() < 1e-12);
        // Near-field clamp: no infinite gain at contact.
        assert_eq!(spreading_gain(0.0), 1.0 / NEAR_FIELD_LIMIT);
        assert_eq!(spreading_gain(0.01), 1.0 / NEAR_FIELD_LIMIT);
    }

    #[test]
    fn gain_follows_inverse_distance() {
        assert!((spreading_gain(2.0) - 0.5).abs() < 1e-12);
        assert!((spreading_gain(10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn doubling_distance_costs_6db() {
        use mdn_audio::signal::ratio_to_db;
        let loss = ratio_to_db(spreading_gain(4.0)) - ratio_to_db(spreading_gain(2.0));
        assert!((loss + 6.0206).abs() < 0.01);
    }

    #[test]
    fn absorption_grows_with_frequency_and_distance() {
        assert!(absorption_gain(10.0, 10_000.0) < absorption_gain(10.0, 1_000.0));
        assert!(absorption_gain(100.0, 1_000.0) < absorption_gain(1.0, 1_000.0));
        assert!(absorption_gain(0.0, 20_000.0) == 1.0);
    }

    #[test]
    fn delay_at_speed_of_sound() {
        assert!((propagation_delay_s(343.0) - 1.0).abs() < 1e-12);
        assert_eq!(propagation_delay_s(0.0), 0.0);
    }

    #[test]
    fn combined_gain_bounded_by_parts() {
        let g = propagation_gain(5.0, 8_000.0);
        assert!(g <= spreading_gain(5.0));
        assert!(g > 0.0);
    }

    #[test]
    fn incident_amplitude_matches_spreading_law() {
        assert!((incident_amplitude(0.02, 1.0) - 0.02).abs() < 1e-15);
        assert!((incident_amplitude(0.02, 4.0) - 0.005).abs() < 1e-15);
    }

    #[test]
    fn reuse_distance_inverts_incident_amplitude() {
        let amp = 0.0178; // a 65 dB SPL source
        let thr = 4e-3;
        let d = reuse_distance(amp, thr);
        // Just past the reuse distance the tone is below threshold; just
        // inside it, above.
        assert!(incident_amplitude(amp, d * 1.001) < thr);
        assert!(incident_amplitude(amp, d * 0.999) > thr);
    }

    #[test]
    fn reuse_distance_clamps_to_near_field() {
        // A whisper against a huge threshold never needs more than the
        // near-field limit of separation.
        assert_eq!(reuse_distance(1e-6, 1.0), NEAR_FIELD_LIMIT);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn reuse_distance_rejects_zero_threshold() {
        reuse_distance(0.02, 0.0);
    }
}
