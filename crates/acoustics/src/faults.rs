//! Acoustic-chain fault injection: dead speakers, dead mics, noise bursts.
//!
//! The Self-Healing Audio System line of work (see PAPERS.md) is about
//! exactly these failures: a speaker that goes silent, a microphone whose
//! capture drops out, a burst of interfering noise. A [`SceneFaultPlan`]
//! attaches them to a [`Scene`](crate::scene::Scene) as *time windows* —
//! the same [`Window`] type the capture API speaks — so a chaos test can
//! make the acoustic channel fail during a chosen part of the experiment
//! and prove the control loop rides through it.

use crate::medium::Pos;
use std::time::Duration;

pub use mdn_audio::signal::Window;

/// Faults applied to a scene at render time.
///
/// * **Speaker dropouts** — emissions whose label matches are silently
///   skipped when they *start* inside the window (a dead amplifier plays
///   nothing).
/// * **Speaker degradations** — matching emissions are attenuated by a
///   fixed number of dB instead of muted (a blown cone, a loose
///   connector: quieter, not silent).
/// * **Mic dead intervals** — the rendered signal is zeroed inside the
///   window (a capture chain that briefly dies). The positional variant
///   ([`SceneFaultPlan::mic_dead_at`]) only silences listeners within a
///   radius of a point, so one cell's mic can die while its neighbours
///   keep hearing.
/// * **Noise bursts** — seeded white noise at a given dB SPL is mixed in
///   over the window (a fan spinning up, a door slamming).
#[derive(Debug, Clone, Default)]
pub struct SceneFaultPlan {
    /// `(emitter label, window)` pairs: matching emissions are muted.
    speaker_dropouts: Vec<(String, Window)>,
    /// `(emitter label, window, linear gain)` partial attenuations.
    speaker_degradations: Vec<(String, Window, f64)>,
    /// Windows where every listener hears nothing at all.
    mic_dead: Vec<Window>,
    /// `(centre, radius m, window)` zones where nearby listeners hear
    /// nothing.
    mic_dead_zones: Vec<(Pos, f64, Window)>,
    /// `(window, level dB SPL)` noise bursts.
    noise_bursts: Vec<(Window, f64)>,
    /// Seed for the burst noise generators.
    seed: u64,
}

impl SceneFaultPlan {
    /// An empty plan (no faults) with the given noise seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Mute emissions labelled `label` that start inside `window`.
    pub fn speaker_dropout(mut self, label: impl Into<String>, window: Window) -> Self {
        self.speaker_dropouts.push((label.into(), window));
        self
    }

    /// Attenuate emissions labelled `label` that start inside `window` by
    /// `attenuation_db` dB (a degraded speaker: quieter, not silent).
    ///
    /// # Panics
    /// Panics if `attenuation_db` is negative (that would be a gain).
    pub fn speaker_degraded(
        mut self,
        label: impl Into<String>,
        window: Window,
        attenuation_db: f64,
    ) -> Self {
        assert!(
            attenuation_db >= 0.0,
            "attenuation must be non-negative dB, got {attenuation_db}"
        );
        let gain = 10f64.powf(-attenuation_db / 20.0);
        self.speaker_degradations.push((label.into(), window, gain));
        self
    }

    /// Zero everything the listener hears inside `window`.
    pub fn mic_dead(mut self, window: Window) -> Self {
        self.mic_dead.push(window);
        self
    }

    /// Zero what listeners within `radius_m` metres of `centre` hear
    /// inside `window` — a positional mic kill that leaves far-away
    /// listeners (other cells' mics) untouched.
    pub fn mic_dead_at(mut self, centre: Pos, radius_m: f64, window: Window) -> Self {
        assert!(
            radius_m >= 0.0,
            "radius must be non-negative, got {radius_m}"
        );
        self.mic_dead_zones.push((centre, radius_m, window));
        self
    }

    /// Mix a white-noise burst at `level_db` SPL over `window`.
    pub fn noise_burst(mut self, window: Window, level_db: f64) -> Self {
        self.noise_bursts.push((window, level_db));
        self
    }

    /// Is the emitter labelled `label` muted at `start`?
    pub fn speaker_muted(&self, label: &str, start: Duration) -> bool {
        self.speaker_dropouts
            .iter()
            .any(|(l, w)| l == label && w.contains(start))
    }

    /// Combined linear gain applied to the emitter labelled `label` at
    /// `start` by every matching degradation (`1.0` when undegraded).
    pub fn speaker_gain(&self, label: &str, start: Duration) -> f64 {
        self.speaker_degradations
            .iter()
            .filter(|(l, w, _)| l == label && w.contains(start))
            .map(|(_, _, g)| g)
            .product()
    }

    /// Mic-dead windows.
    pub fn mic_dead_windows(&self) -> &[Window] {
        &self.mic_dead
    }

    /// Positional mic-dead zones as `(centre, radius m, window)`.
    pub fn mic_dead_zones(&self) -> &[(Pos, f64, Window)] {
        &self.mic_dead_zones
    }

    /// The mic-dead windows that apply to a listener at `pos`: every
    /// global window plus the zones whose radius covers `pos`.
    pub fn mic_dead_windows_at(&self, pos: Pos) -> impl Iterator<Item = Window> + '_ {
        self.mic_dead.iter().copied().chain(
            self.mic_dead_zones
                .iter()
                .filter(move |(c, r, _)| c.distance(&pos) <= *r)
                .map(|(_, _, w)| *w),
        )
    }

    /// Noise bursts as `(window, level dB SPL)`.
    pub fn noise_bursts(&self) -> &[(Window, f64)] {
        &self.noise_bursts
    }

    /// The burst noise seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn window_is_half_open() {
        let w = Window::between(MS(100), MS(200));
        assert!(!w.contains(MS(99)));
        assert!(w.contains(MS(100)));
        assert!(w.contains(MS(199)));
        assert!(!w.contains(MS(200)));
    }

    #[test]
    #[should_panic(expected = "start before")]
    fn window_rejects_inversion() {
        Window::between(MS(200), MS(100));
    }

    #[test]
    fn speaker_muting_matches_label_and_time() {
        let plan =
            SceneFaultPlan::new(0).speaker_dropout("sw-1", Window::between(MS(100), MS(300)));
        assert!(plan.speaker_muted("sw-1", MS(150)));
        assert!(!plan.speaker_muted("sw-1", MS(350)));
        assert!(!plan.speaker_muted("sw-2", MS(150)));
    }

    #[test]
    fn degradations_compound_and_scope_to_label_and_window() {
        let w = Window::between(MS(100), MS(300));
        let plan = SceneFaultPlan::new(0)
            .speaker_degraded("sw-1", w, 6.0)
            .speaker_degraded("sw-1", w, 6.0)
            .speaker_degraded("sw-2", w, 40.0);
        let g = plan.speaker_gain("sw-1", MS(150));
        let expect = 10f64.powf(-12.0 / 20.0);
        assert!((g - expect).abs() < 1e-12, "two 6 dB cuts compound: {g}");
        assert_eq!(plan.speaker_gain("sw-1", MS(350)), 1.0, "outside window");
        assert_eq!(plan.speaker_gain("sw-3", MS(150)), 1.0, "other label");
    }

    #[test]
    fn positional_mic_dead_zones_filter_by_listener() {
        let w = Window::between(MS(100), MS(300));
        let global = Window::between(MS(500), MS(600));
        let plan =
            SceneFaultPlan::new(0)
                .mic_dead(global)
                .mic_dead_at(Pos::new(1.0, 0.0, 0.0), 0.5, w);
        let near: Vec<Window> = plan.mic_dead_windows_at(Pos::new(1.2, 0.0, 0.0)).collect();
        assert_eq!(near, vec![global, w], "global window plus the zone");
        let far: Vec<Window> = plan.mic_dead_windows_at(Pos::new(5.0, 0.0, 0.0)).collect();
        assert_eq!(far, vec![global], "only the global window");
    }
}
