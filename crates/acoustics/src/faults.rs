//! Acoustic-chain fault injection: dead speakers, dead mics, noise bursts.
//!
//! The Self-Healing Audio System line of work (see PAPERS.md) is about
//! exactly these failures: a speaker that goes silent, a microphone whose
//! capture drops out, a burst of interfering noise. A [`SceneFaultPlan`]
//! attaches them to a [`Scene`](crate::scene::Scene) as *time windows* —
//! the same [`Window`] type the capture API speaks — so a chaos test can
//! make the acoustic channel fail during a chosen part of the experiment
//! and prove the control loop rides through it.

use std::time::Duration;

pub use mdn_audio::signal::Window;

/// Faults applied to a scene at render time.
///
/// * **Speaker dropouts** — emissions whose label matches are silently
///   skipped when they *start* inside the window (a dead amplifier plays
///   nothing).
/// * **Mic dead intervals** — the rendered signal is zeroed inside the
///   window (a capture chain that briefly dies).
/// * **Noise bursts** — seeded white noise at a given dB SPL is mixed in
///   over the window (a fan spinning up, a door slamming).
#[derive(Debug, Clone, Default)]
pub struct SceneFaultPlan {
    /// `(emitter label, window)` pairs: matching emissions are muted.
    speaker_dropouts: Vec<(String, Window)>,
    /// Windows where the listener hears nothing at all.
    mic_dead: Vec<Window>,
    /// `(window, level dB SPL)` noise bursts.
    noise_bursts: Vec<(Window, f64)>,
    /// Seed for the burst noise generators.
    seed: u64,
}

impl SceneFaultPlan {
    /// An empty plan (no faults) with the given noise seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Mute emissions labelled `label` that start inside `window`.
    pub fn speaker_dropout(mut self, label: impl Into<String>, window: Window) -> Self {
        self.speaker_dropouts.push((label.into(), window));
        self
    }

    /// Zero everything the listener hears inside `window`.
    pub fn mic_dead(mut self, window: Window) -> Self {
        self.mic_dead.push(window);
        self
    }

    /// Mix a white-noise burst at `level_db` SPL over `window`.
    pub fn noise_burst(mut self, window: Window, level_db: f64) -> Self {
        self.noise_bursts.push((window, level_db));
        self
    }

    /// Is the emitter labelled `label` muted at `start`?
    pub fn speaker_muted(&self, label: &str, start: Duration) -> bool {
        self.speaker_dropouts
            .iter()
            .any(|(l, w)| l == label && w.contains(start))
    }

    /// Mic-dead windows.
    pub fn mic_dead_windows(&self) -> &[Window] {
        &self.mic_dead
    }

    /// Noise bursts as `(window, level dB SPL)`.
    pub fn noise_bursts(&self) -> &[(Window, f64)] {
        &self.noise_bursts
    }

    /// The burst noise seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn window_is_half_open() {
        let w = Window::between(MS(100), MS(200));
        assert!(!w.contains(MS(99)));
        assert!(w.contains(MS(100)));
        assert!(w.contains(MS(199)));
        assert!(!w.contains(MS(200)));
    }

    #[test]
    #[should_panic(expected = "start before")]
    fn window_rejects_inversion() {
        Window::between(MS(200), MS(100));
    }

    #[test]
    fn speaker_muting_matches_label_and_time() {
        let plan =
            SceneFaultPlan::new(0).speaker_dropout("sw-1", Window::between(MS(100), MS(300)));
        assert!(plan.speaker_muted("sw-1", MS(150)));
        assert!(!plan.speaker_muted("sw-1", MS(350)));
        assert!(!plan.speaker_muted("sw-2", MS(150)));
    }
}
