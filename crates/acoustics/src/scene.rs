//! Acoustic scenes: emitters + ambient + listeners.
//!
//! A [`Scene`] collects every sound event in an experiment — the tones
//! switches play, the background music, the fan — each at a position and a
//! start time, plus an ambient profile. Rendering for a listener mixes all
//! of it with per-source distance attenuation and propagation delay, which
//! is exactly the pressure field a microphone at that spot would see.
//!
//! Rendering is *windowed*: [`Scene::render_window`] produces any span
//! `[from, from + len)` of the listener's timeline byte-identically to the
//! same slice of a from-zero render, touching only the work inside the
//! window — a sorted interval index selects the emissions that can reach
//! the window (propagation delay included), the ambient bed is seekable
//! (`mdn_audio::noise::*_at`), and faults are clipped to the window. That
//! is what makes a closed control loop O(window) per tick instead of
//! re-rendering the entire elapsed history; [`SceneCursor`] streams
//! consecutive windows through one reusable scratch buffer.

use crate::ambient::AmbientProfile;
use crate::faults::SceneFaultPlan;
use crate::medium::{incident_amplitude, propagation_delay_s, spreading_gain, Pos};
use crate::mic::Microphone;
use mdn_audio::noise::white_noise_add;
use mdn_audio::signal::{duration_to_samples, spl_to_amplitude, Window};
use mdn_audio::Signal;
use mdn_obs::{Counter, Histogram, Registry, SpanKind, TraceId, TraceSink, TraceSpan};
use std::sync::OnceLock;
use std::time::Duration;

/// Registry handles for a [`Scene`]'s counters; disabled by default.
/// Updates happen from `&self` render paths (including scoped worker
/// threads), which the atomic handles make safe.
#[derive(Debug, Clone, Default)]
struct SceneObs {
    emissions: Counter,
    muted_emissions: Counter,
    degraded_emissions: Counter,
    noise_bursts: Counter,
    mic_dead_windows: Counter,
    render_span: Histogram,
}

/// One scheduled sound in the scene.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Where the source sits.
    pub pos: Pos,
    /// When the source starts playing (scene time).
    pub start: Duration,
    /// What it plays (pressure at the 1 m reference distance).
    pub signal: Signal,
    /// Label for debugging/tracing (e.g. "switch-3").
    pub label: String,
}

/// Samples-per-thread floor for parallel rendering: below this much output
/// per worker, spawning threads costs more than the mixing saves.
const MIN_SAMPLES_PER_THREAD: usize = 1 << 16;

/// Start-sorted interval index over a scene's emissions, built lazily on
/// first render and invalidated by [`Scene::add`]. `prefix_max_end[k]`
/// bounds `start + duration` over the first `k + 1` sorted emissions, so a
/// reverse walk from the last emission starting before the window's end
/// can stop as soon as even the longest-lived earlier emission — delayed
/// by the worst-case propagation over the scene's bounding box — cannot
/// reach the window's start.
#[derive(Debug, Clone)]
struct EmissionIndex {
    /// Emission indices sorted by start time.
    order: Vec<usize>,
    /// Start times, in `order` order.
    starts: Vec<Duration>,
    /// Prefix max of `start + signal.duration()`, in `order` order.
    prefix_max_end: Vec<Duration>,
    /// Axis-aligned bounds over emission positions.
    bbox: Option<(Pos, Pos)>,
}

impl EmissionIndex {
    fn build(emissions: &[Emission]) -> Self {
        let mut order: Vec<usize> = (0..emissions.len()).collect();
        order.sort_by_key(|&i| emissions[i].start);
        let starts = order.iter().map(|&i| emissions[i].start).collect();
        let mut prefix_max_end = Vec::with_capacity(order.len());
        let mut max_end = Duration::ZERO;
        for &i in &order {
            max_end = max_end.max(emissions[i].start + emissions[i].signal.duration());
            prefix_max_end.push(max_end);
        }
        let bbox = emissions.iter().map(|e| e.pos).fold(None, |acc, p| {
            let (lo, hi) = acc.unwrap_or((p, p));
            Some((
                Pos::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z)),
                Pos::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z)),
            ))
        });
        Self {
            order,
            starts,
            prefix_max_end,
            bbox,
        }
    }

    /// Upper bound on the propagation delay from any emission to
    /// `listener`: the delay over the farthest corner of the bounding box.
    fn max_delay(&self, listener: Pos) -> Duration {
        match self.bbox {
            None => Duration::ZERO,
            Some((lo, hi)) => {
                let dx = (listener.x - lo.x).abs().max((listener.x - hi.x).abs());
                let dy = (listener.y - lo.y).abs().max((listener.y - hi.y).abs());
                let dz = (listener.z - lo.z).abs().max((listener.z - hi.z).abs());
                let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                Duration::from_secs_f64(propagation_delay_s(dist))
            }
        }
    }
}

/// A collection of emissions over a shared timeline, with an ambient bed.
#[derive(Debug, Clone)]
pub struct Scene {
    sample_rate: u32,
    emissions: Vec<Emission>,
    ambient: AmbientProfile,
    ambient_seed: u64,
    faults: Option<SceneFaultPlan>,
    render_threads: usize,
    index: OnceLock<EmissionIndex>,
    obs: SceneObs,
    trace: TraceSink,
    /// A trace armed by [`Scene::set_next_emission_trace`], consumed by
    /// the next [`Scene::add`] to record that emission's `emit` span.
    pending_trace: Option<(TraceId, usize)>,
}

impl Scene {
    /// An empty scene at `sample_rate` with the given ambient profile.
    pub fn new(sample_rate: u32, ambient: AmbientProfile) -> Self {
        assert!(sample_rate > 0);
        Self {
            sample_rate,
            emissions: Vec::new(),
            ambient,
            ambient_seed: 0,
            faults: None,
            render_threads: 0,
            index: OnceLock::new(),
            obs: SceneObs::default(),
            trace: TraceSink::disabled(),
            pending_trace: None,
        }
    }

    /// Register this scene's metrics with an observability registry:
    /// `mdn_scene_emissions_total`, fault-activation counters
    /// (`mdn_scene_muted_emissions_total`,
    /// `mdn_scene_degraded_emissions_total`, `mdn_scene_noise_bursts_total`,
    /// `mdn_scene_mic_dead_windows_total`), and the
    /// `mdn_stage_ns{stage="scene.render"}` span. Emissions already
    /// scheduled are carried over.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = SceneObs {
            emissions: registry.counter("mdn_scene_emissions_total", &[]),
            muted_emissions: registry.counter("mdn_scene_muted_emissions_total", &[]),
            degraded_emissions: registry.counter("mdn_scene_degraded_emissions_total", &[]),
            noise_bursts: registry.counter("mdn_scene_noise_bursts_total", &[]),
            mic_dead_windows: registry.counter("mdn_scene_mic_dead_windows_total", &[]),
            render_span: registry.stage_histogram("scene.render"),
        };
        self.obs.emissions.add(self.emissions.len() as u64);
    }

    /// Attach a causal-trace sink. Once attached, an emission armed with
    /// [`Scene::set_next_emission_trace`] records an `emit` span covering
    /// its signal's air time when it lands in [`Scene::add`].
    pub fn attach_trace(&mut self, sink: &TraceSink) {
        self.trace = sink.clone();
    }

    /// Arm the next [`Scene::add`] call to record its emission against
    /// `trace` (attributed to `cell`). Un-consumed arms are replaced by
    /// the next call; [`Scene::clear_emission_trace`] disarms (e.g. when
    /// the emit attempt failed before reaching the scene).
    pub fn set_next_emission_trace(&mut self, trace: TraceId, cell: usize) {
        if self.trace.is_enabled() {
            self.pending_trace = Some((trace, cell));
        }
    }

    /// Disarm a pending [`Scene::set_next_emission_trace`].
    pub fn clear_emission_trace(&mut self) {
        self.pending_trace = None;
    }

    /// A quiet scene (20 dB SPL ambient) — the default for unit tests.
    pub fn quiet(sample_rate: u32) -> Self {
        Self::new(sample_rate, AmbientProfile::quiet())
    }

    /// Replace the ambient noise seed (defaults to 0).
    pub fn set_ambient_seed(&mut self, seed: u64) {
        self.ambient_seed = seed;
    }

    /// Worker threads for rendering: `0` (the default) sizes from the
    /// machine's available parallelism, `1` forces sequential rendering,
    /// `n` caps at `n`. The rendered samples are byte-identical for every
    /// setting — workers own disjoint ranges of the output and mix
    /// emissions into each range in emission order.
    pub fn set_render_threads(&mut self, threads: usize) {
        self.render_threads = threads;
    }

    /// Attach (or replace) an acoustic fault plan. Faults apply at render
    /// time, so one scene can be rendered with and without them.
    pub fn set_faults(&mut self, plan: SceneFaultPlan) {
        self.faults = Some(plan);
    }

    /// Remove any attached fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&SceneFaultPlan> {
        self.faults.as_ref()
    }

    /// The scene's sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Schedule `signal` to play from `pos` starting at `start`.
    ///
    /// # Panics
    /// Panics if the signal's sample rate differs from the scene's.
    pub fn add(&mut self, pos: Pos, start: Duration, signal: Signal, label: impl Into<String>) {
        assert_eq!(
            signal.sample_rate(),
            self.sample_rate,
            "emission sample rate must match the scene"
        );
        let label = label.into();
        if let Some((trace, cell)) = self.pending_trace.take() {
            self.trace.record(TraceSpan {
                trace,
                kind: SpanKind::Emit,
                from: start,
                to: start + signal.duration(),
                wall_ns: 0,
                cell,
                detail: label.clone(),
            });
        }
        self.emissions.push(Emission {
            pos,
            start,
            signal,
            label,
        });
        self.index.take();
        self.obs.emissions.inc();
    }

    /// Number of scheduled emissions.
    pub fn num_emissions(&self) -> usize {
        self.emissions.len()
    }

    /// The scheduled emissions.
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Time at which the last emission finishes (ignoring propagation
    /// delay), or zero for an empty scene.
    pub fn end_time(&self) -> Duration {
        self.emissions
            .iter()
            .map(|e| e.start + e.signal.duration())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Drop emissions that cannot be heard in any window starting at or
    /// after `cutoff`: those with `start + duration + delay_bound <=
    /// cutoff`, where `delay_bound` is a caller-supplied upper bound on
    /// the propagation delay from any emission to any listener it will
    /// still render for (e.g. the delay across the hall's diagonal).
    /// Returns the number retired.
    ///
    /// Rendering is time-functional — an emission only contributes to
    /// samples at or after its own delayed start — so windows from
    /// `cutoff` onward stay byte-identical after the sweep. This is the
    /// garbage collection that keeps a soak's emission index O(active
    /// tones) instead of O(all tones ever played); windows *before*
    /// `cutoff` must not be rendered again afterwards.
    pub fn retire_emissions_before(&mut self, cutoff: Duration, delay_bound: Duration) -> usize {
        let before = self.emissions.len();
        self.emissions
            .retain(|e| e.start + e.signal.duration() + delay_bound > cutoff);
        let retired = before - self.emissions.len();
        if retired > 0 {
            self.index.take();
        }
        retired
    }

    /// Worker threads for rendering `total_len` output samples.
    fn render_workers(&self, total_len: usize) -> usize {
        let requested = if self.render_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.render_threads
        };
        requested
            .min(total_len.div_ceil(MIN_SAMPLES_PER_THREAD))
            .max(1)
    }

    /// Placement pass for window `w`: `(emission index, spreading gain,
    /// absolute start sample)` for every emission whose delayed sample
    /// range overlaps the window's. The interval index prunes the scan to
    /// emissions near the window — a reverse walk over start-sorted
    /// emissions that stops once `prefix_max_end + max_delay` falls before
    /// the window — so a tick render of a long scene does O(hits + log n)
    /// selection work, not O(n). Hits are returned in emission insertion
    /// order, which makes the mix independent of the window split.
    fn place_in_window(&self, listener: Pos, w: Window) -> Vec<(usize, f64, usize)> {
        let index = self
            .index
            .get_or_init(|| EmissionIndex::build(&self.emissions));
        let delay_cap = index.max_delay(listener);
        let (a, b) = w.sample_range(self.sample_rate);
        let mut hits = Vec::new();
        // An emission arrives no earlier than it starts, so only starts
        // before the window's end can be heard inside it.
        let upper = index.starts.partition_point(|&s| s < w.end());
        for k in (0..upper).rev() {
            if index.prefix_max_end[k] + delay_cap <= w.from {
                // Even the longest-lived emission so far, delayed by the
                // worst case, ends before the window starts — and the
                // prefix max only shrinks further left.
                break;
            }
            let e = &self.emissions[index.order[k]];
            let mut fault_gain = 1.0;
            if let Some(plan) = &self.faults {
                // A dead speaker plays nothing for the whole emission.
                if plan.speaker_muted(&e.label, e.start) {
                    self.obs.muted_emissions.inc();
                    continue;
                }
                // A degraded speaker plays the whole emission quieter.
                fault_gain = plan.speaker_gain(&e.label, e.start);
                if fault_gain != 1.0 {
                    self.obs.degraded_emissions.inc();
                }
            }
            let dist = e.pos.distance(&listener);
            let gain = spreading_gain(dist) * fault_gain;
            let delay = Duration::from_secs_f64(propagation_delay_s(dist));
            let offset = duration_to_samples(e.start + delay, self.sample_rate);
            if offset >= b || offset + e.signal.len() <= a {
                continue;
            }
            hits.push((index.order[k], gain, offset));
        }
        hits.sort_unstable_by_key(|&(i, _, _)| i);
        hits
    }

    /// Mix placed emissions into `out`, whose first sample sits at
    /// absolute scene sample `range0`, in parallel across disjoint output
    /// ranges.
    ///
    /// Each output sample accumulates its emissions in emission order with
    /// the same per-sample arithmetic as `Signal::scaled` + `Signal::mix_at`
    /// (`out[i] += (src as f64 * gain) as f32`), so the result is
    /// byte-identical for any thread count and any window split.
    fn mix_placed(&self, placed: &[(usize, f64, usize)], range0: usize, out: &mut Signal) {
        let total_len = out.len();
        let threads = self.render_workers(total_len);
        let mix_range = |range_start: usize, dst: &mut [f32]| {
            let range_end = range_start + dst.len();
            for &(ei, gain, offset) in placed {
                let src = self.emissions[ei].signal.samples();
                let begin = offset.max(range_start);
                let end = (offset + src.len()).min(range_end);
                if begin >= end {
                    continue;
                }
                let src = &src[begin - offset..end - offset];
                let dst = &mut dst[begin - range_start..end - range_start];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += (s as f64 * gain) as f32;
                }
            }
        };
        if threads <= 1 {
            mix_range(range0, out.samples_mut());
        } else {
            let per = total_len.div_ceil(threads);
            let mix_range = &mix_range;
            std::thread::scope(|s| {
                for (t, dst) in out.samples_mut().chunks_mut(per).enumerate() {
                    s.spawn(move || mix_range(range0 + t * per, dst));
                }
            });
        }
    }

    /// Render window `w` of the listener's timeline into `out`, reusing
    /// its allocation ([`Signal::reset`]). Touches only work overlapping
    /// the window; the output is byte-identical to the same span of a
    /// from-zero render.
    ///
    /// # Panics
    /// Panics if `out`'s sample rate differs from the scene's.
    pub fn render_window_into(&self, listener: Pos, w: Window, out: &mut Signal) {
        assert_eq!(
            out.sample_rate(),
            self.sample_rate,
            "scratch sample rate must match the scene"
        );
        let _span = self.obs.render_span.start_span();
        let (a, b) = w.sample_range(self.sample_rate);
        out.reset(b - a);
        if a == b {
            return;
        }
        self.ambient.render_into(
            out.samples_mut(),
            a as u64,
            self.sample_rate,
            self.ambient_seed,
        );
        let placed = self.place_in_window(listener, w);
        self.mix_placed(&placed, a, out);
        if let Some(plan) = &self.faults {
            for (i, (win, level_db)) in plan.noise_bursts().iter().enumerate() {
                if win.from >= w.end() || win.end() <= w.from {
                    continue;
                }
                self.obs.noise_bursts.inc();
                // The burst is samples [0, round(len)) of its own white
                // stream, placed at the absolute sample of its start.
                let s0 = duration_to_samples(win.from, self.sample_rate);
                let blen = duration_to_samples(win.len, self.sample_rate);
                let begin = s0.max(a);
                let end = (s0 + blen).min(b);
                if begin < end {
                    white_noise_add(
                        &mut out.samples_mut()[begin - a..end - a],
                        (begin - s0) as u64,
                        spl_to_amplitude(*level_db),
                        plan.seed() ^ (i as u64),
                    );
                }
            }
            for win in plan.mic_dead_windows_at(listener) {
                let begin = duration_to_samples(win.from, self.sample_rate).max(a);
                let end = duration_to_samples(win.end(), self.sample_rate).min(b);
                if begin < end {
                    self.obs.mic_dead_windows.inc();
                    for s in &mut out.samples_mut()[begin - a..end - a] {
                        *s = 0.0;
                    }
                }
            }
        }
    }

    /// Render window `w` of the pressure signal an ideal listener at
    /// `listener` would observe: all emissions attenuated by distance,
    /// delayed by propagation, plus the ambient bed, with any fault plan
    /// applied — all clipped to the window.
    ///
    /// Long windows are mixed in parallel ([`Scene::set_render_threads`]);
    /// the output is byte-identical for any thread count and equals the
    /// `[w.from, w.end())` span of `render_at(listener, w.end())` exactly.
    pub fn render_window(&self, listener: Pos, w: Window) -> Signal {
        let mut out = Signal::empty(self.sample_rate);
        self.render_window_into(listener, w, &mut out);
        out
    }

    /// Render `[0, duration)` for a listener — a from-zero
    /// [`Scene::render_window`].
    pub fn render_at(&self, listener: Pos, duration: Duration) -> Signal {
        self.render_window(listener, Window::from_start(duration))
    }

    /// A streaming renderer for consecutive windows at `listener`,
    /// starting at time zero.
    pub fn cursor(&self, listener: Pos) -> SceneCursor<'_> {
        SceneCursor {
            scene: self,
            listener,
            at: Duration::ZERO,
            scratch: Signal::empty(self.sample_rate),
        }
    }

    /// Render window `w` at the microphone's position and pass it through
    /// the microphone's capture chain (band limit, ADC resample, noise
    /// floor, clipping) — the one capture implementation everything
    /// (controller ticks included) goes through.
    pub fn capture(&self, mic: &Microphone, at: Pos, w: Window) -> Signal {
        mic.capture(&self.render_window(at, w))
    }

    /// Worst-case peak amplitude this scene's emissions can present at
    /// `listener`, excluding ambient: each emission's peak scaled by the
    /// same spreading law the renderer applies, summed coherently (as if
    /// every source lined up in phase). The render at `listener` can never
    /// exceed this bound plus the ambient bed — the cross-cell
    /// interference query the acoustic-cell planner builds on.
    pub fn incident_peak_at(&self, listener: Pos) -> f64 {
        self.emissions
            .iter()
            .map(|e| incident_amplitude(e.signal.peak(), e.pos.distance(&listener)))
            .sum()
    }
}

/// A stateful streaming renderer: repeated [`SceneCursor::advance`] calls
/// return consecutive windows of the listener's timeline through one
/// reusable scratch buffer, so a closed control loop allocates nothing per
/// tick and the concatenated chunks are byte-identical to one batch
/// render ([`Window::sample_range`] makes adjacent windows tile the sample
/// grid exactly).
#[derive(Debug)]
pub struct SceneCursor<'a> {
    scene: &'a Scene,
    listener: Pos,
    at: Duration,
    scratch: Signal,
}

impl SceneCursor<'_> {
    /// The time the next [`SceneCursor::advance`] starts from.
    pub fn position(&self) -> Duration {
        self.at
    }

    /// Jump the cursor to `at` (the stream is seekable end to end).
    pub fn seek(&mut self, at: Duration) {
        self.at = at;
    }

    /// Render the next `len` of the stream and advance past it. The
    /// returned signal borrows the cursor's scratch buffer and is valid
    /// until the next call.
    pub fn advance(&mut self, len: Duration) -> &Signal {
        let w = Window::new(self.at, len);
        self.scene
            .render_window_into(self.listener, w, &mut self.scratch);
        self.at = w.end();
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdn_audio::signal::spl_to_amplitude;
    use mdn_audio::spectral::Spectrum;
    use mdn_audio::synth::Tone;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, spl: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), spl_to_amplitude(spl)).render(SR)
    }

    fn win(from_ms: u64, len_ms: u64) -> Window {
        Window::new(
            Duration::from_millis(from_ms),
            Duration::from_millis(len_ms),
        )
    }

    #[test]
    fn empty_scene_renders_ambient_only() {
        let scene = Scene::quiet(SR);
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
        // Quiet ambient: ~20 dB SPL.
        assert!((out.rms_spl() - 20.0).abs() < 2.0, "got {}", out.rms_spl());
    }

    #[test]
    fn retiring_spent_emissions_keeps_later_windows_byte_identical() {
        let mut scene = Scene::quiet(SR);
        scene.set_ambient_seed(11);
        let far = Pos::new(8.0, 0.0, 0.0);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(900.0, 100, 60.0), "old");
        // Ends (at the source) just before the cutoff, but its ~20 ms
        // propagation delay to the listener pushes its tail across it —
        // exactly the emission a naive `end <= cutoff` sweep would lose.
        scene.add(far, Duration::from_millis(440), tone(1100.0, 55, 60.0), "mid");
        scene.add(Pos::ORIGIN, Duration::from_millis(600), tone(700.0, 100, 60.0), "live");
        let listener = Pos::new(1.0, 0.5, 0.0);
        let w = win(500, 300);
        let reference = scene.render_window(listener, w);

        // A generous delay bound keeps "mid" (still ringing into later
        // windows after propagation) but retires "old".
        let delay_bound = Duration::from_millis(50);
        let retired = scene.retire_emissions_before(Duration::from_millis(500), delay_bound);
        assert_eq!(retired, 1, "only the spent emission goes");
        assert_eq!(scene.num_emissions(), 2);
        let swept = scene.render_window(listener, w);
        assert_eq!(
            reference.samples(),
            swept.samples(),
            "windows after the cutoff must not change"
        );

        // Retiring nothing touches nothing.
        assert_eq!(scene.retire_emissions_before(Duration::ZERO, delay_bound), 0);
    }

    #[test]
    fn nearby_tone_dominates_render() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let out = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        let spec = Spectrum::of(&out);
        let peak = spec.magnitude_at(1000.0);
        assert!(peak > spl_to_amplitude(55.0), "peak {peak}");
    }

    #[test]
    fn distance_attenuates_by_inverse_law() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 500, 70.0), "sw");
        let near = scene.render_at(Pos::new(1.0, 0.0, 0.0), Duration::from_millis(500));
        let far = scene.render_at(Pos::new(4.0, 0.0, 0.0), Duration::from_millis(500));
        let near_mag = Spectrum::of(&near).magnitude_at(1000.0);
        let far_mag = Spectrum::of(&far).magnitude_at(1000.0);
        let ratio = near_mag / far_mag;
        assert!((ratio - 4.0).abs() < 0.8, "ratio {ratio}");
    }

    #[test]
    fn propagation_delays_distant_sources() {
        let mut scene = Scene::quiet(SR);
        // 34.3 m away → 100 ms of flight time.
        scene.add(
            Pos::new(34.3, 0.0, 0.0),
            Duration::ZERO,
            tone(2000.0, 100, 80.0),
            "far",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(400));
        let early = out.window(win(0, 80));
        let later = out.window(win(110, 80));
        let early_mag = Spectrum::of(&early).magnitude_at(2000.0);
        let later_mag = Spectrum::of(&later).magnitude_at(2000.0);
        assert!(
            later_mag > 10.0 * early_mag.max(1e-9),
            "early {early_mag} later {later_mag}"
        );
    }

    #[test]
    fn render_length_is_exact_despite_overruns() {
        let mut scene = Scene::quiet(SR);
        // Emission extends past the render window.
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(150),
            tone(500.0, 500, 60.0),
            "long",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
    }

    #[test]
    fn emission_after_window_is_skipped() {
        let mut scene = Scene::quiet(SR);
        scene.add(
            Pos::ORIGIN,
            Duration::from_secs(5),
            tone(500.0, 100, 90.0),
            "late",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(100));
        let spec = Spectrum::of(&out);
        assert!(spec.magnitude_at(500.0) < spl_to_amplitude(40.0));
    }

    #[test]
    fn end_time_tracks_longest_emission() {
        let mut scene = Scene::quiet(SR);
        assert_eq!(scene.end_time(), Duration::ZERO);
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(100),
            tone(500.0, 200, 60.0),
            "a",
        );
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(50),
            tone(600.0, 100, 60.0),
            "b",
        );
        assert_eq!(scene.end_time(), Duration::from_millis(300));
    }

    #[test]
    fn capture_through_microphone() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let cap = scene.capture(
            &Microphone::measurement(),
            Pos::new(0.5, 0.0, 0.0),
            Window::from_start(Duration::from_millis(300)),
        );
        assert_eq!(cap.sample_rate(), 44_100);
        let spec = Spectrum::of(&cap);
        assert!(spec.magnitude_at(1000.0) > spl_to_amplitude(50.0));
    }

    #[test]
    #[should_panic(expected = "sample rate must match")]
    fn rejects_rate_mismatch() {
        let mut scene = Scene::quiet(SR);
        let wrong = Tone::new(500.0, Duration::from_millis(10), 0.1).render(48_000);
        scene.add(Pos::ORIGIN, Duration::ZERO, wrong, "bad");
    }

    #[test]
    fn speaker_dropout_silences_matching_emission() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw-1");
        let healthy = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        scene.set_faults(SceneFaultPlan::new(0).speaker_dropout(
            "sw-1",
            Window::between(Duration::ZERO, Duration::from_secs(1)),
        ));
        let muted = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        let h = Spectrum::of(&healthy).magnitude_at(1000.0);
        let m = Spectrum::of(&muted).magnitude_at(1000.0);
        assert!(h > spl_to_amplitude(55.0), "healthy peak {h}");
        assert!(m < h / 10.0, "muted peak {m} vs healthy {h}");
        // Dropout window over: the speaker plays again.
        scene.set_faults(SceneFaultPlan::new(0).speaker_dropout(
            "sw-1",
            Window::between(Duration::from_secs(2), Duration::from_secs(3)),
        ));
        let later = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        assert!(Spectrum::of(&later).magnitude_at(1000.0) > spl_to_amplitude(55.0));
    }

    #[test]
    fn mic_dead_window_zeroes_capture() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 400, 70.0), "sw");
        scene.set_faults(SceneFaultPlan::new(0).mic_dead(Window::between(
            Duration::from_millis(100),
            Duration::from_millis(200),
        )));
        let out = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(400));
        let dead = out.window(win(110, 80));
        assert!(
            dead.samples().iter().all(|&s| s == 0.0),
            "dead window silent"
        );
        let alive = out.window(win(250, 100));
        assert!(alive.samples().iter().any(|&s| s != 0.0));
    }

    #[test]
    fn noise_burst_raises_level_inside_window_only() {
        let mut scene = Scene::quiet(SR);
        scene.set_faults(SceneFaultPlan::new(7).noise_burst(
            Window::between(Duration::from_millis(200), Duration::from_millis(400)),
            65.0,
        ));
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(600));
        let quiet = out.window(win(0, 180));
        let loud = out.window(win(210, 180));
        assert!(
            loud.rms_spl() > quiet.rms_spl() + 20.0,
            "burst {} vs quiet {}",
            loud.rms_spl(),
            quiet.rms_spl()
        );
        // Deterministic: same plan, same burst.
        let again = scene.render_at(Pos::ORIGIN, Duration::from_millis(600));
        assert_eq!(out.samples(), again.samples());
    }

    #[test]
    fn speaker_degraded_attenuates_by_the_given_db() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw-1");
        let at = Pos::new(0.5, 0.0, 0.0);
        let healthy = scene.render_at(at, Duration::from_millis(300));
        scene.set_faults(SceneFaultPlan::new(0).speaker_degraded(
            "sw-1",
            Window::between(Duration::ZERO, Duration::from_secs(1)),
            20.0,
        ));
        let degraded = scene.render_at(at, Duration::from_millis(300));
        let h = Spectrum::of(&healthy).magnitude_at(1000.0);
        let d = Spectrum::of(&degraded).magnitude_at(1000.0);
        // 20 dB down is a 10x amplitude drop — quieter but not silent.
        assert!(
            (d / h - 0.1).abs() < 0.02,
            "degraded/healthy ratio {} should be ~0.1",
            d / h
        );
        assert!(d > spl_to_amplitude(30.0), "still audible");
        // Outside the window the speaker plays at full level.
        scene.set_faults(SceneFaultPlan::new(0).speaker_degraded(
            "sw-1",
            Window::between(Duration::from_secs(2), Duration::from_secs(3)),
            20.0,
        ));
        let later = scene.render_at(at, Duration::from_millis(300));
        let l = Spectrum::of(&later).magnitude_at(1000.0);
        assert!((l / h - 1.0).abs() < 1e-6, "unwindowed ratio {}", l / h);
    }

    #[test]
    #[should_panic(expected = "attenuation must be non-negative")]
    fn speaker_degraded_rejects_negative_attenuation() {
        let _ = SceneFaultPlan::new(0).speaker_degraded(
            "sw",
            Window::between(Duration::ZERO, Duration::from_secs(1)),
            -3.0,
        );
    }

    #[test]
    fn positional_mic_dead_only_silences_nearby_listeners() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 400, 70.0), "sw");
        let near = Pos::new(0.5, 0.0, 0.0);
        let far = Pos::new(6.0, 0.0, 0.0);
        scene.set_faults(SceneFaultPlan::new(0).mic_dead_at(
            near,
            1.0,
            Window::between(Duration::from_millis(100), Duration::from_millis(200)),
        ));
        let near_cap = scene.render_at(near, Duration::from_millis(400));
        let dead = near_cap.window(win(110, 80));
        assert!(
            dead.samples().iter().all(|&s| s == 0.0),
            "listener inside the zone hears nothing in the window"
        );
        let far_cap = scene.render_at(far, Duration::from_millis(400));
        let same_span = far_cap.window(win(110, 80));
        assert!(
            same_span.samples().iter().any(|&s| s != 0.0),
            "listener outside the zone is unaffected"
        );
    }

    /// A scene exercising every render feature at once: overlapping
    /// emissions at different distances, a far (delayed) source, an
    /// ambient bed with every component, and all three fault kinds.
    fn busy_scene() -> Scene {
        let mut scene = Scene::new(SR, crate::ambient::AmbientProfile::datacenter());
        scene.set_ambient_seed(11);
        for i in 0..5 {
            scene.add(
                Pos::new(0.4 * (i + 1) as f64, 0.1, 0.0),
                Duration::from_millis(120 * i as u64),
                tone(500.0 + 150.0 * i as f64, 400, 62.0),
                format!("sw-{i}"),
            );
        }
        // 17 m away: ~50 ms of flight time pushes it across window edges.
        scene.add(
            Pos::new(17.0, 0.0, 0.0),
            Duration::from_millis(300),
            tone(1800.0, 200, 80.0),
            "far",
        );
        scene.set_faults(
            SceneFaultPlan::new(5)
                .speaker_dropout(
                    "sw-2",
                    Window::between(Duration::ZERO, Duration::from_secs(2)),
                )
                .noise_burst(win(350, 200), 70.0)
                .mic_dead(win(600, 100)),
        );
        scene
    }

    #[test]
    fn windowed_render_matches_full_render_slice() {
        let scene = busy_scene();
        let listener = Pos::new(0.9, -0.3, 0.2);
        let full = scene.render_at(listener, Duration::from_millis(1000));
        for (from, len) in [
            (0u64, 1000u64),
            (0, 130),
            (130, 300),
            (270, 1),
            (555, 445),
            (900, 300),
        ] {
            let w = win(from, len);
            let windowed = scene.render_window(listener, w);
            let (a, b) = w.sample_range(SR);
            let b_in = b.min(full.len());
            assert_eq!(
                &windowed.samples()[..b_in - a],
                &full.samples()[a..b_in],
                "window {from}+{len} ms diverged from the full render"
            );
        }
    }

    #[test]
    fn cursor_chunks_concatenate_to_batch_render() {
        let scene = busy_scene();
        let listener = Pos::new(0.9, -0.3, 0.2);
        let batch = scene.render_at(listener, Duration::from_millis(900));
        // Uneven chunks, including ones that don't land on sample edges.
        let mut cursor = scene.cursor(listener);
        let mut streamed: Vec<f32> = Vec::new();
        for chunk_ms in [70u64, 230, 1, 399, 200] {
            streamed.extend_from_slice(cursor.advance(Duration::from_millis(chunk_ms)).samples());
        }
        assert_eq!(cursor.position(), Duration::from_millis(900));
        assert_eq!(streamed, batch.samples(), "streamed chunks diverged");
        // The cursor is seekable: jumping back re-renders identically.
        cursor.seek(Duration::from_millis(230));
        let again = cursor.advance(Duration::from_millis(71));
        let w = win(230, 71);
        let (a, b) = w.sample_range(SR);
        assert_eq!(again.samples(), &batch.samples()[a..b]);
    }

    #[test]
    fn parallel_render_is_byte_identical_to_sequential() {
        // Several overlapping emissions at different distances (distinct
        // gains and delays), long enough to clear the per-thread floor.
        let mut scene = Scene::quiet(SR);
        for i in 0..6 {
            scene.add(
                Pos::new(0.3 * (i + 1) as f64, 0.2, 0.0),
                Duration::from_millis(150 * i as u64),
                tone(500.0 + 120.0 * i as f64, 900, 60.0),
                format!("sw-{i}"),
            );
        }
        let listener = Pos::new(0.7, -0.4, 0.1);
        let dur = Duration::from_secs(3);
        let mut seq = scene.clone();
        seq.set_render_threads(1);
        let baseline = seq.render_at(listener, dur);
        for threads in [0usize, 2, 3, 8] {
            let mut par = scene.clone();
            par.set_render_threads(threads);
            let rendered = par.render_at(listener, dur);
            assert_eq!(rendered.samples(), baseline.samples(), "threads={threads}");
        }
    }

    #[test]
    fn obs_counters_mirror_scene_activity() {
        let registry = Registry::new();
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 200, 60.0), "sw-1");
        // Attaching after the fact carries over already-scheduled emissions.
        scene.attach_obs(&registry);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(2000.0, 200, 60.0), "sw-2");
        scene.set_faults(
            SceneFaultPlan::new(3)
                .speaker_dropout(
                    "sw-1",
                    Window::between(Duration::ZERO, Duration::from_secs(1)),
                )
                .noise_burst(win(50, 50), 65.0)
                .mic_dead(win(120, 40)),
        );
        scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(200));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["mdn_scene_emissions_total"], 2);
        assert_eq!(snap.counters["mdn_scene_muted_emissions_total"], 1);
        assert_eq!(snap.counters["mdn_scene_noise_bursts_total"], 1);
        assert_eq!(snap.counters["mdn_scene_mic_dead_windows_total"], 1);
        let render = &snap.histograms["mdn_stage_ns{stage=\"scene.render\"}"];
        assert_eq!(render.count, 1);
        assert!(render.sum > 0);
    }

    #[test]
    fn ambient_seed_changes_bed() {
        let mut a = Scene::quiet(SR);
        let mut b = Scene::quiet(SR);
        a.set_ambient_seed(1);
        b.set_ambient_seed(2);
        let ra = a.render_at(Pos::ORIGIN, Duration::from_millis(50));
        let rb = b.render_at(Pos::ORIGIN, Duration::from_millis(50));
        assert_ne!(ra.samples(), rb.samples());
    }

    #[test]
    fn incident_peak_bounds_the_render() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "a");
        scene.add(
            Pos::new(3.0, 0.0, 0.0),
            Duration::ZERO,
            tone(1100.0, 300, 60.0),
            "b",
        );
        let listener = Pos::new(1.0, 0.5, 0.0);
        let bound = scene.incident_peak_at(listener);
        let out = scene.render_at(listener, Duration::from_millis(300));
        // Coherent-sum bound plus a small ambient allowance covers the
        // rendered peak.
        assert!(
            out.peak() <= bound + spl_to_amplitude(30.0),
            "render peak {} exceeds bound {}",
            out.peak(),
            bound
        );
        // And the bound is tight for a single nearby source: within 2× of
        // the actual peak (ambient and the second, farther source are the
        // slack).
        assert!(bound < 2.5 * out.peak(), "bound {bound} is vacuous");
    }

    #[test]
    fn incident_peak_follows_inverse_distance() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 100, 60.0), "a");
        let near = scene.incident_peak_at(Pos::new(1.0, 0.0, 0.0));
        let far = scene.incident_peak_at(Pos::new(4.0, 0.0, 0.0));
        assert!((near / far - 4.0).abs() < 1e-9, "near {near} far {far}");
    }
}
