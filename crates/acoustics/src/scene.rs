//! Acoustic scenes: emitters + ambient + listeners.
//!
//! A [`Scene`] collects every sound event in an experiment — the tones
//! switches play, the background music, the fan — each at a position and a
//! start time, plus an ambient profile. Rendering for a listener mixes all
//! of it with per-source distance attenuation and propagation delay, which
//! is exactly the pressure field a microphone at that spot would see.

use crate::ambient::AmbientProfile;
use crate::medium::{propagation_delay_s, spreading_gain, Pos};
use crate::mic::Microphone;
use mdn_audio::Signal;
use std::time::Duration;

/// One scheduled sound in the scene.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Where the source sits.
    pub pos: Pos,
    /// When the source starts playing (scene time).
    pub start: Duration,
    /// What it plays (pressure at the 1 m reference distance).
    pub signal: Signal,
    /// Label for debugging/tracing (e.g. "switch-3").
    pub label: String,
}

/// A collection of emissions over a shared timeline, with an ambient bed.
#[derive(Debug, Clone)]
pub struct Scene {
    sample_rate: u32,
    emissions: Vec<Emission>,
    ambient: AmbientProfile,
    ambient_seed: u64,
}

impl Scene {
    /// An empty scene at `sample_rate` with the given ambient profile.
    pub fn new(sample_rate: u32, ambient: AmbientProfile) -> Self {
        assert!(sample_rate > 0);
        Self {
            sample_rate,
            emissions: Vec::new(),
            ambient,
            ambient_seed: 0,
        }
    }

    /// A quiet scene (20 dB SPL ambient) — the default for unit tests.
    pub fn quiet(sample_rate: u32) -> Self {
        Self::new(sample_rate, AmbientProfile::quiet())
    }

    /// Replace the ambient noise seed (defaults to 0).
    pub fn set_ambient_seed(&mut self, seed: u64) {
        self.ambient_seed = seed;
    }

    /// The scene's sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Schedule `signal` to play from `pos` starting at `start`.
    ///
    /// # Panics
    /// Panics if the signal's sample rate differs from the scene's.
    pub fn add(&mut self, pos: Pos, start: Duration, signal: Signal, label: impl Into<String>) {
        assert_eq!(
            signal.sample_rate(),
            self.sample_rate,
            "emission sample rate must match the scene"
        );
        self.emissions.push(Emission {
            pos,
            start,
            signal,
            label: label.into(),
        });
    }

    /// Number of scheduled emissions.
    pub fn num_emissions(&self) -> usize {
        self.emissions.len()
    }

    /// The scheduled emissions.
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Time at which the last emission finishes (ignoring propagation
    /// delay), or zero for an empty scene.
    pub fn end_time(&self) -> Duration {
        self.emissions
            .iter()
            .map(|e| e.start + e.signal.duration())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Render the pressure signal an ideal listener at `listener` would
    /// observe over `[0, duration)`: all emissions attenuated by distance,
    /// delayed by propagation, plus the ambient bed.
    pub fn render_at(&self, listener: Pos, duration: Duration) -> Signal {
        let mut out = self
            .ambient
            .render(duration, self.sample_rate, self.ambient_seed);
        if out.is_empty() {
            return out;
        }
        let total_len = out.len();
        for e in &self.emissions {
            let dist = e.pos.distance(&listener);
            let gain = spreading_gain(dist);
            let delay = Duration::from_secs_f64(propagation_delay_s(dist));
            let at = e.start + delay;
            if at >= duration {
                continue;
            }
            let attenuated = e.signal.scaled(gain);
            out.mix_at_time(&attenuated, at);
        }
        // mix_at_time may have grown the buffer past `duration`; trim back.
        out.slice(0, total_len)
    }

    /// Render the scene at the microphone's position and pass it through
    /// the microphone's capture chain (band limit, ADC resample, noise
    /// floor, clipping).
    pub fn capture(&self, mic: &Microphone, at: Pos, duration: Duration) -> Signal {
        mic.capture(&self.render_at(at, duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdn_audio::signal::spl_to_amplitude;
    use mdn_audio::spectral::Spectrum;
    use mdn_audio::synth::Tone;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, spl: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), spl_to_amplitude(spl)).render(SR)
    }

    #[test]
    fn empty_scene_renders_ambient_only() {
        let scene = Scene::quiet(SR);
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
        // Quiet ambient: ~20 dB SPL.
        assert!((out.rms_spl() - 20.0).abs() < 2.0, "got {}", out.rms_spl());
    }

    #[test]
    fn nearby_tone_dominates_render() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let out = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        let spec = Spectrum::of(&out);
        let peak = spec.magnitude_at(1000.0);
        assert!(peak > spl_to_amplitude(55.0), "peak {peak}");
    }

    #[test]
    fn distance_attenuates_by_inverse_law() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 500, 70.0), "sw");
        let near = scene.render_at(Pos::new(1.0, 0.0, 0.0), Duration::from_millis(500));
        let far = scene.render_at(Pos::new(4.0, 0.0, 0.0), Duration::from_millis(500));
        let near_mag = Spectrum::of(&near).magnitude_at(1000.0);
        let far_mag = Spectrum::of(&far).magnitude_at(1000.0);
        let ratio = near_mag / far_mag;
        assert!((ratio - 4.0).abs() < 0.8, "ratio {ratio}");
    }

    #[test]
    fn propagation_delays_distant_sources() {
        let mut scene = Scene::quiet(SR);
        // 34.3 m away → 100 ms of flight time.
        scene.add(
            Pos::new(34.3, 0.0, 0.0),
            Duration::ZERO,
            tone(2000.0, 100, 80.0),
            "far",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(400));
        let early = out.window(Duration::ZERO, Duration::from_millis(80));
        let later = out.window(Duration::from_millis(110), Duration::from_millis(80));
        let early_mag = Spectrum::of(&early).magnitude_at(2000.0);
        let later_mag = Spectrum::of(&later).magnitude_at(2000.0);
        assert!(
            later_mag > 10.0 * early_mag.max(1e-9),
            "early {early_mag} later {later_mag}"
        );
    }

    #[test]
    fn render_length_is_exact_despite_overruns() {
        let mut scene = Scene::quiet(SR);
        // Emission extends past the render window.
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(150),
            tone(500.0, 500, 60.0),
            "long",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
    }

    #[test]
    fn emission_after_window_is_skipped() {
        let mut scene = Scene::quiet(SR);
        scene.add(
            Pos::ORIGIN,
            Duration::from_secs(5),
            tone(500.0, 100, 90.0),
            "late",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(100));
        let spec = Spectrum::of(&out);
        assert!(spec.magnitude_at(500.0) < spl_to_amplitude(40.0));
    }

    #[test]
    fn end_time_tracks_longest_emission() {
        let mut scene = Scene::quiet(SR);
        assert_eq!(scene.end_time(), Duration::ZERO);
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(100),
            tone(500.0, 200, 60.0),
            "a",
        );
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(50),
            tone(600.0, 100, 60.0),
            "b",
        );
        assert_eq!(scene.end_time(), Duration::from_millis(300));
    }

    #[test]
    fn capture_through_microphone() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let cap = scene.capture(
            &Microphone::measurement(),
            Pos::new(0.5, 0.0, 0.0),
            Duration::from_millis(300),
        );
        assert_eq!(cap.sample_rate(), 44_100);
        let spec = Spectrum::of(&cap);
        assert!(spec.magnitude_at(1000.0) > spl_to_amplitude(50.0));
    }

    #[test]
    #[should_panic(expected = "sample rate must match")]
    fn rejects_rate_mismatch() {
        let mut scene = Scene::quiet(SR);
        let wrong = Tone::new(500.0, Duration::from_millis(10), 0.1).render(48_000);
        scene.add(Pos::ORIGIN, Duration::ZERO, wrong, "bad");
    }

    #[test]
    fn ambient_seed_changes_bed() {
        let mut a = Scene::quiet(SR);
        let mut b = Scene::quiet(SR);
        a.set_ambient_seed(1);
        b.set_ambient_seed(2);
        let ra = a.render_at(Pos::ORIGIN, Duration::from_millis(50));
        let rb = b.render_at(Pos::ORIGIN, Duration::from_millis(50));
        assert_ne!(ra.samples(), rb.samples());
    }
}
