//! Acoustic scenes: emitters + ambient + listeners.
//!
//! A [`Scene`] collects every sound event in an experiment — the tones
//! switches play, the background music, the fan — each at a position and a
//! start time, plus an ambient profile. Rendering for a listener mixes all
//! of it with per-source distance attenuation and propagation delay, which
//! is exactly the pressure field a microphone at that spot would see.

use crate::ambient::AmbientProfile;
use crate::faults::SceneFaultPlan;
use crate::medium::{incident_amplitude, propagation_delay_s, spreading_gain, Pos};
use crate::mic::Microphone;
use mdn_audio::signal::{duration_to_samples, spl_to_amplitude};
use mdn_audio::Signal;
use mdn_obs::{Counter, Histogram, Registry};
use std::time::Duration;

/// Registry handles for a [`Scene`]'s counters; disabled by default.
/// Updates happen from `&self` render paths (including scoped worker
/// threads), which the atomic handles make safe.
#[derive(Debug, Clone, Default)]
struct SceneObs {
    emissions: Counter,
    muted_emissions: Counter,
    noise_bursts: Counter,
    mic_dead_windows: Counter,
    render_span: Histogram,
}

/// One scheduled sound in the scene.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Where the source sits.
    pub pos: Pos,
    /// When the source starts playing (scene time).
    pub start: Duration,
    /// What it plays (pressure at the 1 m reference distance).
    pub signal: Signal,
    /// Label for debugging/tracing (e.g. "switch-3").
    pub label: String,
}

/// Samples-per-thread floor for parallel rendering: below this much output
/// per worker, spawning threads costs more than the mixing saves.
const MIN_SAMPLES_PER_THREAD: usize = 1 << 16;

/// A collection of emissions over a shared timeline, with an ambient bed.
#[derive(Debug, Clone)]
pub struct Scene {
    sample_rate: u32,
    emissions: Vec<Emission>,
    ambient: AmbientProfile,
    ambient_seed: u64,
    faults: Option<SceneFaultPlan>,
    render_threads: usize,
    obs: SceneObs,
}

impl Scene {
    /// An empty scene at `sample_rate` with the given ambient profile.
    pub fn new(sample_rate: u32, ambient: AmbientProfile) -> Self {
        assert!(sample_rate > 0);
        Self {
            sample_rate,
            emissions: Vec::new(),
            ambient,
            ambient_seed: 0,
            faults: None,
            render_threads: 0,
            obs: SceneObs::default(),
        }
    }

    /// Register this scene's metrics with an observability registry:
    /// `mdn_scene_emissions_total`, fault-activation counters
    /// (`mdn_scene_muted_emissions_total`, `mdn_scene_noise_bursts_total`,
    /// `mdn_scene_mic_dead_windows_total`), and the
    /// `mdn_stage_ns{stage="scene.render"}` span. Emissions already
    /// scheduled are carried over.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = SceneObs {
            emissions: registry.counter("mdn_scene_emissions_total", &[]),
            muted_emissions: registry.counter("mdn_scene_muted_emissions_total", &[]),
            noise_bursts: registry.counter("mdn_scene_noise_bursts_total", &[]),
            mic_dead_windows: registry.counter("mdn_scene_mic_dead_windows_total", &[]),
            render_span: registry.stage_histogram("scene.render"),
        };
        self.obs.emissions.add(self.emissions.len() as u64);
    }

    /// A quiet scene (20 dB SPL ambient) — the default for unit tests.
    pub fn quiet(sample_rate: u32) -> Self {
        Self::new(sample_rate, AmbientProfile::quiet())
    }

    /// Replace the ambient noise seed (defaults to 0).
    pub fn set_ambient_seed(&mut self, seed: u64) {
        self.ambient_seed = seed;
    }

    /// Worker threads for [`Scene::render_at`]: `0` (the default) sizes
    /// from the machine's available parallelism, `1` forces sequential
    /// rendering, `n` caps at `n`. The rendered samples are byte-identical
    /// for every setting — workers own disjoint ranges of the output and
    /// mix emissions into each range in emission order.
    pub fn set_render_threads(&mut self, threads: usize) {
        self.render_threads = threads;
    }

    /// Attach (or replace) an acoustic fault plan. Faults apply at render
    /// time, so one scene can be rendered with and without them.
    pub fn set_faults(&mut self, plan: SceneFaultPlan) {
        self.faults = Some(plan);
    }

    /// Remove any attached fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&SceneFaultPlan> {
        self.faults.as_ref()
    }

    /// The scene's sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Schedule `signal` to play from `pos` starting at `start`.
    ///
    /// # Panics
    /// Panics if the signal's sample rate differs from the scene's.
    pub fn add(&mut self, pos: Pos, start: Duration, signal: Signal, label: impl Into<String>) {
        assert_eq!(
            signal.sample_rate(),
            self.sample_rate,
            "emission sample rate must match the scene"
        );
        self.emissions.push(Emission {
            pos,
            start,
            signal,
            label: label.into(),
        });
        self.obs.emissions.inc();
    }

    /// Number of scheduled emissions.
    pub fn num_emissions(&self) -> usize {
        self.emissions.len()
    }

    /// The scheduled emissions.
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Time at which the last emission finishes (ignoring propagation
    /// delay), or zero for an empty scene.
    pub fn end_time(&self) -> Duration {
        self.emissions
            .iter()
            .map(|e| e.start + e.signal.duration())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Worker threads for rendering `total_len` output samples.
    fn render_workers(&self, total_len: usize) -> usize {
        let requested = if self.render_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.render_threads
        };
        requested
            .min(total_len.div_ceil(MIN_SAMPLES_PER_THREAD))
            .max(1)
    }

    /// Mix every audible emission into `out` (whose length bounds the
    /// render window), in parallel across disjoint output ranges.
    ///
    /// Each output sample accumulates its emissions in emission order with
    /// the same per-sample arithmetic as `Signal::scaled` + `Signal::mix_at`
    /// (`out[i] += (src as f64 * gain) as f32`), so the result is
    /// byte-identical to the sequential path for any thread count.
    fn mix_emissions(&self, listener: Pos, duration: Duration, out: &mut Signal) {
        // Placement pass: distance gain and propagation-delayed offset for
        // every emission that is audible inside the window.
        let mut placed: Vec<(&Emission, f64, usize)> = Vec::new();
        for e in &self.emissions {
            if let Some(plan) = &self.faults {
                // A dead speaker plays nothing for the whole emission.
                if plan.speaker_muted(&e.label, e.start) {
                    self.obs.muted_emissions.inc();
                    continue;
                }
            }
            let dist = e.pos.distance(&listener);
            let gain = spreading_gain(dist);
            let delay = Duration::from_secs_f64(propagation_delay_s(dist));
            let at = e.start + delay;
            if at >= duration {
                continue;
            }
            placed.push((e, gain, duration_to_samples(at, self.sample_rate)));
        }
        let total_len = out.len();
        let threads = self.render_workers(total_len);
        let mix_range = |range_start: usize, dst: &mut [f32]| {
            let range_end = range_start + dst.len();
            for &(e, gain, offset) in &placed {
                let src = e.signal.samples();
                let begin = offset.max(range_start);
                let end = (offset + src.len()).min(range_end);
                if begin >= end {
                    continue;
                }
                let src = &src[begin - offset..end - offset];
                let dst = &mut dst[begin - range_start..end - range_start];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += (s as f64 * gain) as f32;
                }
            }
        };
        if threads <= 1 {
            mix_range(0, out.samples_mut());
        } else {
            let per = total_len.div_ceil(threads);
            let mix_range = &mix_range;
            std::thread::scope(|s| {
                for (t, dst) in out.samples_mut().chunks_mut(per).enumerate() {
                    s.spawn(move || mix_range(t * per, dst));
                }
            });
        }
    }

    /// Render the pressure signal an ideal listener at `listener` would
    /// observe over `[0, duration)`: all emissions attenuated by distance,
    /// delayed by propagation, plus the ambient bed.
    ///
    /// Long renders are mixed in parallel ([`Scene::set_render_threads`]);
    /// the output is byte-identical for any thread count.
    pub fn render_at(&self, listener: Pos, duration: Duration) -> Signal {
        let _span = self.obs.render_span.start_span();
        let mut out = self
            .ambient
            .render(duration, self.sample_rate, self.ambient_seed);
        if out.is_empty() {
            return out;
        }
        let total_len = out.len();
        self.mix_emissions(listener, duration, &mut out);
        if let Some(plan) = &self.faults {
            for (i, (win, level_db)) in plan.noise_bursts().iter().enumerate() {
                if win.from >= duration {
                    continue;
                }
                self.obs.noise_bursts.inc();
                let burst = mdn_audio::noise::white_noise(
                    win.to - win.from,
                    spl_to_amplitude(*level_db),
                    self.sample_rate,
                    plan.seed() ^ (i as u64),
                );
                out.mix_at_time(&burst, win.from);
            }
        }
        // mix_at_time may have grown the buffer past `duration`; trim back.
        let mut out = out.slice(0, total_len);
        if let Some(plan) = &self.faults {
            for win in plan.mic_dead_windows() {
                let from = duration_to_samples(win.from, self.sample_rate).min(total_len);
                let to = duration_to_samples(win.to, self.sample_rate).min(total_len);
                if from < to {
                    self.obs.mic_dead_windows.inc();
                }
                for s in &mut out.samples_mut()[from..to] {
                    *s = 0.0;
                }
            }
        }
        out
    }

    /// Render the scene at the microphone's position and pass it through
    /// the microphone's capture chain (band limit, ADC resample, noise
    /// floor, clipping).
    pub fn capture(&self, mic: &Microphone, at: Pos, duration: Duration) -> Signal {
        mic.capture(&self.render_at(at, duration))
    }

    /// Worst-case peak amplitude this scene's emissions can present at
    /// `listener`, excluding ambient: each emission's peak scaled by the
    /// same spreading law the renderer applies, summed coherently (as if
    /// every source lined up in phase). The render at `listener` can never
    /// exceed this bound plus the ambient bed — the cross-cell
    /// interference query the acoustic-cell planner builds on.
    pub fn incident_peak_at(&self, listener: Pos) -> f64 {
        self.emissions
            .iter()
            .map(|e| incident_amplitude(e.signal.peak(), e.pos.distance(&listener)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdn_audio::signal::spl_to_amplitude;
    use mdn_audio::spectral::Spectrum;
    use mdn_audio::synth::Tone;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, spl: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), spl_to_amplitude(spl)).render(SR)
    }

    #[test]
    fn empty_scene_renders_ambient_only() {
        let scene = Scene::quiet(SR);
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
        // Quiet ambient: ~20 dB SPL.
        assert!((out.rms_spl() - 20.0).abs() < 2.0, "got {}", out.rms_spl());
    }

    #[test]
    fn nearby_tone_dominates_render() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let out = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        let spec = Spectrum::of(&out);
        let peak = spec.magnitude_at(1000.0);
        assert!(peak > spl_to_amplitude(55.0), "peak {peak}");
    }

    #[test]
    fn distance_attenuates_by_inverse_law() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 500, 70.0), "sw");
        let near = scene.render_at(Pos::new(1.0, 0.0, 0.0), Duration::from_millis(500));
        let far = scene.render_at(Pos::new(4.0, 0.0, 0.0), Duration::from_millis(500));
        let near_mag = Spectrum::of(&near).magnitude_at(1000.0);
        let far_mag = Spectrum::of(&far).magnitude_at(1000.0);
        let ratio = near_mag / far_mag;
        assert!((ratio - 4.0).abs() < 0.8, "ratio {ratio}");
    }

    #[test]
    fn propagation_delays_distant_sources() {
        let mut scene = Scene::quiet(SR);
        // 34.3 m away → 100 ms of flight time.
        scene.add(
            Pos::new(34.3, 0.0, 0.0),
            Duration::ZERO,
            tone(2000.0, 100, 80.0),
            "far",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(400));
        let early = out.window(Duration::ZERO, Duration::from_millis(80));
        let later = out.window(Duration::from_millis(110), Duration::from_millis(80));
        let early_mag = Spectrum::of(&early).magnitude_at(2000.0);
        let later_mag = Spectrum::of(&later).magnitude_at(2000.0);
        assert!(
            later_mag > 10.0 * early_mag.max(1e-9),
            "early {early_mag} later {later_mag}"
        );
    }

    #[test]
    fn render_length_is_exact_despite_overruns() {
        let mut scene = Scene::quiet(SR);
        // Emission extends past the render window.
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(150),
            tone(500.0, 500, 60.0),
            "long",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(200));
        assert_eq!(out.len(), 8820);
    }

    #[test]
    fn emission_after_window_is_skipped() {
        let mut scene = Scene::quiet(SR);
        scene.add(
            Pos::ORIGIN,
            Duration::from_secs(5),
            tone(500.0, 100, 90.0),
            "late",
        );
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(100));
        let spec = Spectrum::of(&out);
        assert!(spec.magnitude_at(500.0) < spl_to_amplitude(40.0));
    }

    #[test]
    fn end_time_tracks_longest_emission() {
        let mut scene = Scene::quiet(SR);
        assert_eq!(scene.end_time(), Duration::ZERO);
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(100),
            tone(500.0, 200, 60.0),
            "a",
        );
        scene.add(
            Pos::ORIGIN,
            Duration::from_millis(50),
            tone(600.0, 100, 60.0),
            "b",
        );
        assert_eq!(scene.end_time(), Duration::from_millis(300));
    }

    #[test]
    fn capture_through_microphone() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw");
        let cap = scene.capture(
            &Microphone::measurement(),
            Pos::new(0.5, 0.0, 0.0),
            Duration::from_millis(300),
        );
        assert_eq!(cap.sample_rate(), 44_100);
        let spec = Spectrum::of(&cap);
        assert!(spec.magnitude_at(1000.0) > spl_to_amplitude(50.0));
    }

    #[test]
    #[should_panic(expected = "sample rate must match")]
    fn rejects_rate_mismatch() {
        let mut scene = Scene::quiet(SR);
        let wrong = Tone::new(500.0, Duration::from_millis(10), 0.1).render(48_000);
        scene.add(Pos::ORIGIN, Duration::ZERO, wrong, "bad");
    }

    #[test]
    fn speaker_dropout_silences_matching_emission() {
        use crate::faults::{SceneFaultPlan, TimeWindow};
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "sw-1");
        let healthy = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        scene.set_faults(SceneFaultPlan::new(0).speaker_dropout(
            "sw-1",
            TimeWindow::new(Duration::ZERO, Duration::from_secs(1)),
        ));
        let muted = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        let h = Spectrum::of(&healthy).magnitude_at(1000.0);
        let m = Spectrum::of(&muted).magnitude_at(1000.0);
        assert!(h > spl_to_amplitude(55.0), "healthy peak {h}");
        assert!(m < h / 10.0, "muted peak {m} vs healthy {h}");
        // Dropout window over: the speaker plays again.
        scene.set_faults(SceneFaultPlan::new(0).speaker_dropout(
            "sw-1",
            TimeWindow::new(Duration::from_secs(2), Duration::from_secs(3)),
        ));
        let later = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(300));
        assert!(Spectrum::of(&later).magnitude_at(1000.0) > spl_to_amplitude(55.0));
    }

    #[test]
    fn mic_dead_window_zeroes_capture() {
        use crate::faults::{SceneFaultPlan, TimeWindow};
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 400, 70.0), "sw");
        scene.set_faults(SceneFaultPlan::new(0).mic_dead(TimeWindow::new(
            Duration::from_millis(100),
            Duration::from_millis(200),
        )));
        let out = scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(400));
        let dead = out.window(Duration::from_millis(110), Duration::from_millis(80));
        assert!(dead.samples().iter().all(|&s| s == 0.0), "dead window silent");
        let alive = out.window(Duration::from_millis(250), Duration::from_millis(100));
        assert!(alive.samples().iter().any(|&s| s != 0.0));
    }

    #[test]
    fn noise_burst_raises_level_inside_window_only() {
        use crate::faults::{SceneFaultPlan, TimeWindow};
        let mut scene = Scene::quiet(SR);
        scene.set_faults(SceneFaultPlan::new(7).noise_burst(
            TimeWindow::new(Duration::from_millis(200), Duration::from_millis(400)),
            65.0,
        ));
        let out = scene.render_at(Pos::ORIGIN, Duration::from_millis(600));
        let quiet = out.window(Duration::ZERO, Duration::from_millis(180));
        let loud = out.window(Duration::from_millis(210), Duration::from_millis(180));
        assert!(
            loud.rms_spl() > quiet.rms_spl() + 20.0,
            "burst {} vs quiet {}",
            loud.rms_spl(),
            quiet.rms_spl()
        );
        // Deterministic: same plan, same burst.
        let again = scene.render_at(Pos::ORIGIN, Duration::from_millis(600));
        assert_eq!(out.samples(), again.samples());
    }

    #[test]
    fn parallel_render_is_byte_identical_to_sequential() {
        // Several overlapping emissions at different distances (distinct
        // gains and delays), long enough to clear the per-thread floor.
        let mut scene = Scene::quiet(SR);
        for i in 0..6 {
            scene.add(
                Pos::new(0.3 * (i + 1) as f64, 0.2, 0.0),
                Duration::from_millis(150 * i as u64),
                tone(500.0 + 120.0 * i as f64, 900, 60.0),
                format!("sw-{i}"),
            );
        }
        let listener = Pos::new(0.7, -0.4, 0.1);
        let dur = Duration::from_secs(3);
        let mut seq = scene.clone();
        seq.set_render_threads(1);
        let baseline = seq.render_at(listener, dur);
        for threads in [0usize, 2, 3, 8] {
            let mut par = scene.clone();
            par.set_render_threads(threads);
            let rendered = par.render_at(listener, dur);
            assert_eq!(
                rendered.samples(),
                baseline.samples(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn obs_counters_mirror_scene_activity() {
        use crate::faults::{SceneFaultPlan, TimeWindow};
        let registry = Registry::new();
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 200, 60.0), "sw-1");
        // Attaching after the fact carries over already-scheduled emissions.
        scene.attach_obs(&registry);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(2000.0, 200, 60.0), "sw-2");
        scene.set_faults(
            SceneFaultPlan::new(3)
                .speaker_dropout(
                    "sw-1",
                    TimeWindow::new(Duration::ZERO, Duration::from_secs(1)),
                )
                .noise_burst(
                    TimeWindow::new(Duration::from_millis(50), Duration::from_millis(100)),
                    65.0,
                )
                .mic_dead(TimeWindow::new(
                    Duration::from_millis(120),
                    Duration::from_millis(160),
                )),
        );
        scene.render_at(Pos::new(0.5, 0.0, 0.0), Duration::from_millis(200));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["mdn_scene_emissions_total"], 2);
        assert_eq!(snap.counters["mdn_scene_muted_emissions_total"], 1);
        assert_eq!(snap.counters["mdn_scene_noise_bursts_total"], 1);
        assert_eq!(snap.counters["mdn_scene_mic_dead_windows_total"], 1);
        let render = &snap.histograms["mdn_stage_ns{stage=\"scene.render\"}"];
        assert_eq!(render.count, 1);
        assert!(render.sum > 0);
    }

    #[test]
    fn ambient_seed_changes_bed() {
        let mut a = Scene::quiet(SR);
        let mut b = Scene::quiet(SR);
        a.set_ambient_seed(1);
        b.set_ambient_seed(2);
        let ra = a.render_at(Pos::ORIGIN, Duration::from_millis(50));
        let rb = b.render_at(Pos::ORIGIN, Duration::from_millis(50));
        assert_ne!(ra.samples(), rb.samples());
    }

    #[test]
    fn incident_peak_bounds_the_render() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 300, 60.0), "a");
        scene.add(Pos::new(3.0, 0.0, 0.0), Duration::ZERO, tone(1100.0, 300, 60.0), "b");
        let listener = Pos::new(1.0, 0.5, 0.0);
        let bound = scene.incident_peak_at(listener);
        let out = scene.render_at(listener, Duration::from_millis(300));
        // Coherent-sum bound plus a small ambient allowance covers the
        // rendered peak.
        assert!(
            out.peak() <= bound + spl_to_amplitude(30.0),
            "render peak {} exceeds bound {}",
            out.peak(),
            bound
        );
        // And the bound is tight for a single nearby source: within 2× of
        // the actual peak (ambient and the second, farther source are the
        // slack).
        assert!(bound < 2.5 * out.peak(), "bound {bound} is vacuous");
    }

    #[test]
    fn incident_peak_follows_inverse_distance() {
        let mut scene = Scene::quiet(SR);
        scene.add(Pos::ORIGIN, Duration::ZERO, tone(1000.0, 100, 60.0), "a");
        let near = scene.incident_peak_at(Pos::new(1.0, 0.0, 0.0));
        let far = scene.incident_peak_at(Pos::new(4.0, 0.0, 0.0));
        assert!((near / far - 4.0).abs() < 1e-9, "near {near} far {far}");
    }
}
