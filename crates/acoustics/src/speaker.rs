//! Speaker model.
//!
//! In the paper each switch drives a cheap speaker through a Raspberry Pi:
//! the switch sends a Music Protocol message (frequency, duration,
//! intensity) and the Pi renders a tone. The model enforces the hardware
//! limits the paper reports: a ~30 ms minimum tone length, a usable
//! frequency band, and a maximum output level.

use mdn_audio::signal::spl_to_amplitude;
use mdn_audio::synth::Tone;
use mdn_audio::Signal;
use std::time::Duration;

/// A request to play one tone — the acoustic half of an MP message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneRequest {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Requested duration.
    pub duration: Duration,
    /// Requested level in dB SPL at the reference distance (1 m).
    pub level_spl: f64,
}

/// Why a speaker refused a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeakerError {
    /// The frequency is outside the speaker's response band.
    OutOfBand {
        /// The offending frequency.
        freq_hz: f64,
        /// The speaker's usable band.
        band: (f64, f64),
    },
    /// The requested frequency is not finite or not positive.
    InvalidFrequency(f64),
}

impl std::fmt::Display for SpeakerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeakerError::OutOfBand { freq_hz, band } => {
                write!(
                    f,
                    "{freq_hz} Hz outside speaker band {}..{} Hz",
                    band.0, band.1
                )
            }
            SpeakerError::InvalidFrequency(v) => write!(f, "invalid frequency {v}"),
        }
    }
}

impl std::error::Error for SpeakerError {}

/// A speaker with a response band, a minimum drivable tone length and a
/// maximum output level.
#[derive(Debug, Clone)]
pub struct Speaker {
    /// Usable frequency band `(lo_hz, hi_hz)`.
    pub band: (f64, f64),
    /// Hardware floor on tone duration; shorter requests are stretched to
    /// this (the paper: "the shortest possible length generated in our
    /// testbed was approximately 30 ms").
    pub min_duration: Duration,
    /// Maximum output level in dB SPL at 1 m; louder requests are clamped.
    pub max_level_spl: f64,
}

impl Speaker {
    /// The paper's testbed speaker: cheap desktop speaker, 100 Hz–15 kHz,
    /// 30 ms floor, 85 dB SPL max.
    pub fn cheap() -> Self {
        Self {
            band: (100.0, 15_000.0),
            min_duration: Duration::from_millis(30),
            max_level_spl: 85.0,
        }
    }

    /// A wide-band speaker including ultrasound, for the §8 extension
    /// experiments (up to 40 kHz, 5 ms floor).
    pub fn ultrasound_capable() -> Self {
        Self {
            band: (100.0, 40_000.0),
            min_duration: Duration::from_millis(5),
            max_level_spl: 90.0,
        }
    }

    /// Validate a request and render it to a pressure signal at the
    /// reference distance (1 m). Duration is stretched up to
    /// [`Self::min_duration`]; level is clamped to [`Self::max_level_spl`].
    pub fn play(&self, req: ToneRequest, sample_rate: u32) -> Result<Signal, SpeakerError> {
        let tone = self.shape(req)?;
        Ok(tone.render(sample_rate))
    }

    /// The validation/shaping half of [`Self::play`], returning the tone
    /// that would be rendered (useful when the caller schedules rendering
    /// itself).
    pub fn shape(&self, req: ToneRequest) -> Result<Tone, SpeakerError> {
        if !req.freq_hz.is_finite() || req.freq_hz <= 0.0 {
            return Err(SpeakerError::InvalidFrequency(req.freq_hz));
        }
        if req.freq_hz < self.band.0 || req.freq_hz > self.band.1 {
            return Err(SpeakerError::OutOfBand {
                freq_hz: req.freq_hz,
                band: self.band,
            });
        }
        let duration = req.duration.max(self.min_duration);
        let level = req.level_spl.min(self.max_level_spl);
        Ok(Tone::new(req.freq_hz, duration, spl_to_amplitude(level)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: u32 = 44_100;

    fn req(freq: f64, ms: u64, spl: f64) -> ToneRequest {
        ToneRequest {
            freq_hz: freq,
            duration: Duration::from_millis(ms),
            level_spl: spl,
        }
    }

    #[test]
    fn renders_in_band_tone() {
        let s = Speaker::cheap().play(req(1000.0, 50, 60.0), SR).unwrap();
        assert_eq!(s.len(), 2205);
        // 60 dB SPL sine: peak = amplitude, RMS = amplitude/√2.
        let expected_rms = spl_to_amplitude(60.0) / 2f64.sqrt();
        assert!((s.rms() - expected_rms).abs() / expected_rms < 0.05);
    }

    #[test]
    fn stretches_short_tones_to_hardware_floor() {
        let sp = Speaker::cheap();
        let s = sp.play(req(1000.0, 5, 60.0), SR).unwrap();
        assert_eq!(s.len(), (SR as f64 * 0.030).round() as usize);
    }

    #[test]
    fn clamps_level_to_max() {
        let sp = Speaker::cheap();
        let t = sp.shape(req(1000.0, 50, 120.0)).unwrap();
        assert!((t.amplitude - spl_to_amplitude(85.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_band() {
        let sp = Speaker::cheap();
        let err = sp.play(req(20_000.0, 50, 60.0), SR).unwrap_err();
        assert!(matches!(err, SpeakerError::OutOfBand { .. }));
        let err = sp.play(req(50.0, 50, 60.0), SR).unwrap_err();
        assert!(matches!(err, SpeakerError::OutOfBand { .. }));
    }

    #[test]
    fn ultrasound_speaker_accepts_25khz() {
        let sp = Speaker::ultrasound_capable();
        assert!(sp.shape(req(25_000.0, 50, 60.0)).is_ok());
    }

    #[test]
    fn rejects_nonsense_frequencies() {
        let sp = Speaker::cheap();
        assert!(matches!(
            sp.shape(req(f64::NAN, 50, 60.0)),
            Err(SpeakerError::InvalidFrequency(_))
        ));
        assert!(matches!(
            sp.shape(req(-10.0, 50, 60.0)),
            Err(SpeakerError::InvalidFrequency(_))
        ));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = Speaker::cheap().shape(req(20_000.0, 50, 60.0)).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("20000") && msg.contains("band"));
    }
}
