//! Ambient noise profiles.
//!
//! The paper evaluates in two rooms: a datacenter (noise "may exceed
//! 85 dBA", dominated by hundreds of fans and HVAC) and an office
//! (conversation-level, ~50 dB). A profile renders a deterministic noise
//! bed at a calibrated SPL; the fan-failure experiment (§7 / Figures 6–7)
//! runs the same detector against both.

use mdn_audio::noise::{band_noise, pink_noise, white_noise};
use mdn_audio::signal::{spl_to_amplitude, Signal};
use mdn_audio::synth::Tone;
use std::time::Duration;

/// A parametric ambient noise bed.
#[derive(Debug, Clone)]
pub struct AmbientProfile {
    /// Human-readable name ("datacenter", "office", …).
    pub name: &'static str,
    /// Overall level of the bed in dB SPL.
    pub level_spl: f64,
    /// Fraction of the bed's amplitude that is pink (vs white) noise.
    pub pink_fraction: f64,
    /// Extra band-limited rumble: `(lo_hz, hi_hz, relative_amplitude)`.
    pub rumble_band: Option<(f64, f64, f64)>,
    /// Steady hum lines (mains/HVAC): `(freq_hz, relative_amplitude)`.
    pub hum_lines: Vec<(f64, f64)>,
}

impl AmbientProfile {
    /// Near-silence: an anechoic-ish room at 20 dB SPL, for unit tests that
    /// want the channel without the environment.
    pub fn quiet() -> Self {
        Self {
            name: "quiet",
            level_spl: 20.0,
            pink_fraction: 1.0,
            rumble_band: None,
            hum_lines: Vec::new(),
        }
    }

    /// An office at ~45 dB SPL: pink-dominated, light 60 Hz hum.
    pub fn office() -> Self {
        Self {
            name: "office",
            level_spl: 45.0,
            pink_fraction: 0.8,
            rumble_band: None,
            hum_lines: vec![(60.0, 0.2), (120.0, 0.1)],
        }
    }

    /// A datacenter at ~80 dB SPL: broadband fan wash (100 Hz – 4 kHz),
    /// strong HVAC rumble and mains-harmonic hum — the paper's "typical
    /// datacenter noise".
    pub fn datacenter() -> Self {
        Self {
            name: "datacenter",
            level_spl: 80.0,
            pink_fraction: 0.5,
            rumble_band: Some((100.0, 4000.0, 0.7)),
            hum_lines: vec![(60.0, 0.3), (120.0, 0.25), (240.0, 0.15), (360.0, 0.1)],
        }
    }

    /// Render `duration` of the bed at `sample_rate`, deterministic under
    /// `seed`. The mixed bed is normalized so its RMS matches
    /// [`Self::level_spl`] under the crate's SPL calibration.
    pub fn render(&self, duration: Duration, sample_rate: u32, seed: u64) -> Signal {
        let target_rms = spl_to_amplitude(self.level_spl);
        let mut bed = Signal::silence(duration, sample_rate);
        if bed.is_empty() {
            return bed;
        }
        let pink = pink_noise(duration, self.pink_fraction, sample_rate, seed);
        bed.mix_at(&pink, 0);
        if self.pink_fraction < 1.0 {
            let white = white_noise(duration, 1.0 - self.pink_fraction, sample_rate, seed ^ 0x11);
            bed.mix_at(&white, 0);
        }
        if let Some((lo, hi, amp)) = self.rumble_band {
            let rumble = band_noise(duration, lo, hi, amp, sample_rate, seed ^ 0x22);
            bed.mix_at(&rumble, 0);
        }
        for (i, &(freq, amp)) in self.hum_lines.iter().enumerate() {
            let hum = Tone {
                phase: i as f64,
                ..Tone::new(freq, duration, amp)
            }
            .render(sample_rate);
            bed.mix_at(&hum, 0);
        }
        let rms = bed.rms().max(1e-12);
        bed.scale(target_rms / rms);
        bed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: u32 = 44_100;
    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn rendered_level_matches_spl() {
        for profile in [
            AmbientProfile::quiet(),
            AmbientProfile::office(),
            AmbientProfile::datacenter(),
        ] {
            let bed = profile.render(SEC, SR, 1);
            let err = (bed.rms_spl() - profile.level_spl).abs();
            assert!(
                err < 0.5,
                "{}: rms {} dB vs {} dB",
                profile.name,
                bed.rms_spl(),
                profile.level_spl
            );
        }
    }

    #[test]
    fn datacenter_is_much_louder_than_office() {
        let dc = AmbientProfile::datacenter().render(SEC, SR, 1);
        let office = AmbientProfile::office().render(SEC, SR, 1);
        // 35 dB difference → ~56× in amplitude.
        assert!(dc.rms() > 30.0 * office.rms());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = AmbientProfile::datacenter();
        let a = p.render(Duration::from_millis(200), SR, 9);
        let b = p.render(Duration::from_millis(200), SR, 9);
        assert_eq!(a.samples(), b.samples());
        let c = p.render(Duration::from_millis(200), SR, 10);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn datacenter_has_hum_lines() {
        use mdn_audio::spectral::Spectrum;
        let bed = AmbientProfile::datacenter().render(Duration::from_secs(2), SR, 4);
        let spec = Spectrum::of(&bed);
        // 120 Hz hum should stand above the neighbouring broadband floor.
        let hum = spec.magnitude_at(120.0);
        let floor = spec.magnitude_at(95.0).max(spec.magnitude_at(145.0));
        assert!(hum > 1.5 * floor, "hum {hum} floor {floor}");
    }

    #[test]
    fn zero_duration_is_empty() {
        assert!(AmbientProfile::office()
            .render(Duration::ZERO, SR, 1)
            .is_empty());
    }
}
