//! Ambient noise profiles.
//!
//! The paper evaluates in two rooms: a datacenter (noise "may exceed
//! 85 dBA", dominated by hundreds of fans and HVAC) and an office
//! (conversation-level, ~50 dB). A profile renders a deterministic noise
//! bed at a calibrated SPL; the fan-failure experiment (§7 / Figures 6–7)
//! runs the same detector against both.

use mdn_audio::noise::{band_noise_add, pink_noise_add, white_noise_add};
use mdn_audio::signal::{spl_to_amplitude, Signal, Window};
use std::f64::consts::TAU;
use std::time::Duration;

/// A parametric ambient noise bed.
#[derive(Debug, Clone)]
pub struct AmbientProfile {
    /// Human-readable name ("datacenter", "office", …).
    pub name: &'static str,
    /// Overall level of the bed in dB SPL.
    pub level_spl: f64,
    /// Fraction of the bed's amplitude that is pink (vs white) noise.
    pub pink_fraction: f64,
    /// Extra band-limited rumble: `(lo_hz, hi_hz, relative_amplitude)`.
    pub rumble_band: Option<(f64, f64, f64)>,
    /// Steady hum lines (mains/HVAC): `(freq_hz, relative_amplitude)`.
    pub hum_lines: Vec<(f64, f64)>,
}

impl AmbientProfile {
    /// Near-silence: an anechoic-ish room at 20 dB SPL, for unit tests that
    /// want the channel without the environment.
    pub fn quiet() -> Self {
        Self {
            name: "quiet",
            level_spl: 20.0,
            pink_fraction: 1.0,
            rumble_band: None,
            hum_lines: Vec::new(),
        }
    }

    /// An office at ~45 dB SPL: pink-dominated, light 60 Hz hum.
    pub fn office() -> Self {
        Self {
            name: "office",
            level_spl: 45.0,
            pink_fraction: 0.8,
            rumble_band: None,
            hum_lines: vec![(60.0, 0.2), (120.0, 0.1)],
        }
    }

    /// A datacenter at ~80 dB SPL: broadband fan wash (100 Hz – 4 kHz),
    /// strong HVAC rumble and mains-harmonic hum — the paper's "typical
    /// datacenter noise".
    pub fn datacenter() -> Self {
        Self {
            name: "datacenter",
            level_spl: 80.0,
            pink_fraction: 0.5,
            rumble_band: Some((100.0, 4000.0, 0.7)),
            hum_lines: vec![(60.0, 0.3), (120.0, 0.25), (240.0, 0.15), (360.0, 0.1)],
        }
    }

    /// Amplitude gain taking the unit-parameter component mix to
    /// [`Self::level_spl`], computed analytically from the components'
    /// expected powers (components are independent, so powers add; a hum
    /// line of amplitude `a` carries power `a²/2`). Analytic calibration —
    /// rather than measuring the rendered bed's RMS — is what keeps the
    /// bed a pure function of the absolute sample index, and therefore
    /// seekable: a measured-RMS normalization would couple every sample's
    /// value to the render's duration.
    fn mix_gain(&self) -> f64 {
        let mut power = self.pink_fraction * self.pink_fraction;
        if self.pink_fraction < 1.0 {
            let w = 1.0 - self.pink_fraction;
            power += w * w;
        }
        if let Some((_, _, amp)) = self.rumble_band {
            power += amp * amp;
        }
        for &(_, amp) in &self.hum_lines {
            power += amp * amp / 2.0;
        }
        spl_to_amplitude(self.level_spl) / power.sqrt().max(1e-12)
    }

    /// Add samples `[from, from + out.len())` of the infinite ambient
    /// stream into `out`. Every sample is a pure function of its absolute
    /// index, so any window of the stream renders byte-identically to the
    /// same span of a from-zero render — the property `Scene::render_window`
    /// is built on.
    pub fn render_into(&self, out: &mut [f32], from: u64, sample_rate: u32, seed: u64) {
        if out.is_empty() {
            return;
        }
        let gain = self.mix_gain();
        pink_noise_add(out, from, self.pink_fraction * gain, seed);
        if self.pink_fraction < 1.0 {
            white_noise_add(out, from, (1.0 - self.pink_fraction) * gain, seed ^ 0x11);
        }
        if let Some((lo, hi, amp)) = self.rumble_band {
            band_noise_add(out, from, lo, hi, amp * gain, sample_rate, seed ^ 0x22);
        }
        for (line, &(freq, amp)) in self.hum_lines.iter().enumerate() {
            let step = TAU * freq / sample_rate as f64;
            let phase = line as f64; // de-phase stacked harmonics
            let a = amp * gain;
            for (i, o) in out.iter_mut().enumerate() {
                *o += (a * (phase + step * (from + i as u64) as f64).sin()) as f32;
            }
        }
    }

    /// Render window `w` of the bed at `sample_rate`, deterministic under
    /// `seed` and byte-identical to the same span of any other window.
    pub fn render_window(&self, w: Window, sample_rate: u32, seed: u64) -> Signal {
        let (a, b) = w.sample_range(sample_rate);
        let mut out = Signal::from_samples(vec![0.0; b - a], sample_rate);
        self.render_into(out.samples_mut(), a as u64, sample_rate, seed);
        out
    }

    /// Render `duration` of the bed at `sample_rate`, deterministic under
    /// `seed`. The mix is calibrated analytically so its RMS matches
    /// [`Self::level_spl`] under the crate's SPL calibration.
    pub fn render(&self, duration: Duration, sample_rate: u32, seed: u64) -> Signal {
        self.render_window(Window::from_start(duration), sample_rate, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: u32 = 44_100;
    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn rendered_level_matches_spl() {
        for profile in [
            AmbientProfile::quiet(),
            AmbientProfile::office(),
            AmbientProfile::datacenter(),
        ] {
            let bed = profile.render(SEC, SR, 1);
            let err = (bed.rms_spl() - profile.level_spl).abs();
            assert!(
                err < 0.5,
                "{}: rms {} dB vs {} dB",
                profile.name,
                bed.rms_spl(),
                profile.level_spl
            );
        }
    }

    #[test]
    fn datacenter_is_much_louder_than_office() {
        let dc = AmbientProfile::datacenter().render(SEC, SR, 1);
        let office = AmbientProfile::office().render(SEC, SR, 1);
        // 35 dB difference → ~56× in amplitude.
        assert!(dc.rms() > 30.0 * office.rms());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = AmbientProfile::datacenter();
        let a = p.render(Duration::from_millis(200), SR, 9);
        let b = p.render(Duration::from_millis(200), SR, 9);
        assert_eq!(a.samples(), b.samples());
        let c = p.render(Duration::from_millis(200), SR, 10);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn datacenter_has_hum_lines() {
        use mdn_audio::spectral::Spectrum;
        let bed = AmbientProfile::datacenter().render(Duration::from_secs(2), SR, 4);
        let spec = Spectrum::of(&bed);
        // 120 Hz hum should stand above the neighbouring broadband floor.
        let hum = spec.magnitude_at(120.0);
        let floor = spec.magnitude_at(95.0).max(spec.magnitude_at(145.0));
        assert!(hum > 1.5 * floor, "hum {hum} floor {floor}");
    }

    #[test]
    fn windowed_render_matches_from_zero_render() {
        for profile in [
            AmbientProfile::quiet(),
            AmbientProfile::office(),
            AmbientProfile::datacenter(),
        ] {
            let full = profile.render(Duration::from_millis(600), SR, 7);
            let w = Window::new(Duration::from_millis(250), Duration::from_millis(200));
            let windowed = profile.render_window(w, SR, 7);
            let (a, b) = w.sample_range(SR);
            assert_eq!(
                windowed.samples(),
                &full.samples()[a..b],
                "{}: windowed ambient diverged",
                profile.name
            );
        }
    }

    #[test]
    fn zero_duration_is_empty() {
        assert!(AmbientProfile::office()
            .render(Duration::ZERO, SR, 1)
            .is_empty());
    }
}
