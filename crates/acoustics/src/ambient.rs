//! Ambient noise profiles.
//!
//! The paper evaluates in two rooms: a datacenter (noise "may exceed
//! 85 dBA", dominated by hundreds of fans and HVAC) and an office
//! (conversation-level, ~50 dB). A profile renders a deterministic noise
//! bed at a calibrated SPL; the fan-failure experiment (§7 / Figures 6–7)
//! runs the same detector against both.

use mdn_audio::noise::{
    band_noise_add, band_noise_psd, pink_noise_add, pink_noise_psd, white_noise_add,
    white_noise_psd,
};
use mdn_audio::signal::{spl_to_amplitude, Signal, Window};
use std::f64::consts::TAU;
use std::time::Duration;

/// A parametric ambient noise bed.
#[derive(Debug, Clone)]
pub struct AmbientProfile {
    /// Human-readable name ("datacenter", "office", …).
    pub name: &'static str,
    /// Overall level of the bed in dB SPL.
    pub level_spl: f64,
    /// Fraction of the bed's amplitude that is pink (vs white) noise.
    pub pink_fraction: f64,
    /// Extra band-limited rumble: `(lo_hz, hi_hz, relative_amplitude)`.
    pub rumble_band: Option<(f64, f64, f64)>,
    /// Steady hum lines (mains/HVAC): `(freq_hz, relative_amplitude)`.
    pub hum_lines: Vec<(f64, f64)>,
}

impl AmbientProfile {
    /// Near-silence: an anechoic-ish room at 20 dB SPL, for unit tests that
    /// want the channel without the environment.
    pub fn quiet() -> Self {
        Self {
            name: "quiet",
            level_spl: 20.0,
            pink_fraction: 1.0,
            rumble_band: None,
            hum_lines: Vec::new(),
        }
    }

    /// An office at ~45 dB SPL: pink-dominated, light 60 Hz hum.
    pub fn office() -> Self {
        Self {
            name: "office",
            level_spl: 45.0,
            pink_fraction: 0.8,
            rumble_band: None,
            hum_lines: vec![(60.0, 0.2), (120.0, 0.1)],
        }
    }

    /// A datacenter at ~80 dB SPL: broadband fan wash (100 Hz – 4 kHz),
    /// strong HVAC rumble and mains-harmonic hum — the paper's "typical
    /// datacenter noise".
    pub fn datacenter() -> Self {
        Self {
            name: "datacenter",
            level_spl: 80.0,
            pink_fraction: 0.5,
            rumble_band: Some((100.0, 4000.0, 0.7)),
            hum_lines: vec![(60.0, 0.3), (120.0, 0.25), (240.0, 0.15), (360.0, 0.1)],
        }
    }

    /// Amplitude gain taking the unit-parameter component mix to
    /// [`Self::level_spl`], computed analytically from the components'
    /// expected powers (components are independent, so powers add; a hum
    /// line of amplitude `a` carries power `a²/2`). Analytic calibration —
    /// rather than measuring the rendered bed's RMS — is what keeps the
    /// bed a pure function of the absolute sample index, and therefore
    /// seekable: a measured-RMS normalization would couple every sample's
    /// value to the render's duration.
    fn mix_gain(&self) -> f64 {
        let mut power = self.pink_fraction * self.pink_fraction;
        if self.pink_fraction < 1.0 {
            let w = 1.0 - self.pink_fraction;
            power += w * w;
        }
        if let Some((_, _, amp)) = self.rumble_band {
            power += amp * amp;
        }
        for &(_, amp) in &self.hum_lines {
            power += amp * amp / 2.0;
        }
        spl_to_amplitude(self.level_spl) / power.sqrt().max(1e-12)
    }

    /// Expected tone-equivalent magnitude the bed leaks into one detector
    /// bin of width `bin_hz` centred at `freq_hz` — the amplitude a
    /// Goertzel-style detector (normalized so a sinusoid of peak
    /// amplitude `a` reads `a`) typically reports for this bed at that
    /// frequency.
    ///
    /// Composed from each component's analytic one-sided PSD (white flat,
    /// pink per Voss row, rumble per the band filter's real `|H|⁴`
    /// response): broadband parts contribute `√(2·S(f)·bin_hz)` in power
    /// sum; hum lines are tonal, so a line contributes its full amplitude
    /// when it falls in the bin, decaying with a conservative
    /// `1/(1 + (Δf/bin)²)` skirt off-bin.
    pub fn bin_leakage(&self, freq_hz: f64, bin_hz: f64, sample_rate: u32) -> f64 {
        self.peak_bin_leakage(freq_hz, freq_hz, bin_hz, sample_rate)
    }

    /// Worst-case [`Self::bin_leakage`] over every bin centre
    /// `lo_hz, lo_hz + bin_hz, …` up to `hi_hz` — the floor a detector
    /// watching any slot in that range must stay above to gate this bed
    /// out. Walks real bin centres, so a slot grid with `bin_hz` spacing
    /// starting at `lo_hz` is evaluated exactly.
    pub fn peak_bin_leakage(&self, lo_hz: f64, hi_hz: f64, bin_hz: f64, sample_rate: u32) -> f64 {
        assert!(bin_hz > 0.0, "bin width must be positive");
        assert!(hi_hz >= lo_hz, "inverted range {lo_hz}..{hi_hz}");
        let gain = self.mix_gain();
        let white_psd = if self.pink_fraction < 1.0 {
            white_noise_psd((1.0 - self.pink_fraction) * gain, sample_rate)
        } else {
            0.0
        };
        let pink_rms = self.pink_fraction * gain;
        let mut worst = 0.0f64;
        let bins = ((hi_hz - lo_hz) / bin_hz).floor() as usize + 1;
        for b in 0..bins {
            let f = lo_hz + b as f64 * bin_hz;
            let mut psd = white_psd + pink_noise_psd(pink_rms, f, sample_rate);
            if let Some((lo, hi, amp)) = self.rumble_band {
                psd += band_noise_psd(amp * gain, lo, hi, f, sample_rate);
            }
            let mut mag = (2.0 * psd * bin_hz).sqrt();
            for &(line, amp) in &self.hum_lines {
                let df = (f - line) / bin_hz;
                mag += amp * gain / (1.0 + df * df);
            }
            worst = worst.max(mag);
        }
        worst
    }

    /// Add samples `[from, from + out.len())` of the infinite ambient
    /// stream into `out`. Every sample is a pure function of its absolute
    /// index, so any window of the stream renders byte-identically to the
    /// same span of a from-zero render — the property `Scene::render_window`
    /// is built on.
    pub fn render_into(&self, out: &mut [f32], from: u64, sample_rate: u32, seed: u64) {
        if out.is_empty() {
            return;
        }
        let gain = self.mix_gain();
        pink_noise_add(out, from, self.pink_fraction * gain, seed);
        if self.pink_fraction < 1.0 {
            white_noise_add(out, from, (1.0 - self.pink_fraction) * gain, seed ^ 0x11);
        }
        if let Some((lo, hi, amp)) = self.rumble_band {
            band_noise_add(out, from, lo, hi, amp * gain, sample_rate, seed ^ 0x22);
        }
        for (line, &(freq, amp)) in self.hum_lines.iter().enumerate() {
            let step = TAU * freq / sample_rate as f64;
            let phase = line as f64; // de-phase stacked harmonics
            let a = amp * gain;
            for (i, o) in out.iter_mut().enumerate() {
                *o += (a * (phase + step * (from + i as u64) as f64).sin()) as f32;
            }
        }
    }

    /// Render window `w` of the bed at `sample_rate`, deterministic under
    /// `seed` and byte-identical to the same span of any other window.
    pub fn render_window(&self, w: Window, sample_rate: u32, seed: u64) -> Signal {
        let (a, b) = w.sample_range(sample_rate);
        let mut out = Signal::from_samples(vec![0.0; b - a], sample_rate);
        self.render_into(out.samples_mut(), a as u64, sample_rate, seed);
        out
    }

    /// Render `duration` of the bed at `sample_rate`, deterministic under
    /// `seed`. The mix is calibrated analytically so its RMS matches
    /// [`Self::level_spl`] under the crate's SPL calibration.
    pub fn render(&self, duration: Duration, sample_rate: u32, seed: u64) -> Signal {
        self.render_window(Window::from_start(duration), sample_rate, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: u32 = 44_100;
    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn rendered_level_matches_spl() {
        for profile in [
            AmbientProfile::quiet(),
            AmbientProfile::office(),
            AmbientProfile::datacenter(),
        ] {
            let bed = profile.render(SEC, SR, 1);
            let err = (bed.rms_spl() - profile.level_spl).abs();
            assert!(
                err < 0.5,
                "{}: rms {} dB vs {} dB",
                profile.name,
                bed.rms_spl(),
                profile.level_spl
            );
        }
    }

    #[test]
    fn bin_leakage_tracks_spectral_concentration() {
        // The datacenter bed stacks rumble, pink tilt, and hum at low
        // frequencies: the model must report far more leakage at 400 Hz
        // than a flat spread of the same total power would, and far more
        // than at 10 kHz, where only the white tail remains.
        let dc = AmbientProfile::datacenter();
        let uniform =
            mdn_audio::signal::spl_to_amplitude(dc.level_spl) * (20.0f64 / 20_000.0).sqrt();
        assert!(
            dc.bin_leakage(400.0, 20.0, SR) > 1.5 * uniform,
            "low-band leakage {:.3e} should beat the uniform estimate {uniform:.3e}",
            dc.bin_leakage(400.0, 20.0, SR)
        );
        assert!(dc.bin_leakage(400.0, 20.0, SR) > 5.0 * dc.bin_leakage(10_000.0, 20.0, SR));
        // Quiet room: pink only, everything tiny.
        assert!(AmbientProfile::quiet().bin_leakage(400.0, 20.0, SR) < 1e-4);
    }

    #[test]
    fn peak_bin_leakage_bounds_the_rendered_bed() {
        // The whole point of the estimate: real Goertzel magnitudes of the
        // rendered bed must stay under ~3× the modeled per-bin leakage at
        // every slot a detector might watch (the same headroom the
        // detector's SNR gate assumes).
        use mdn_audio::goertzel::Goertzel;
        for profile in [AmbientProfile::office(), AmbientProfile::datacenter()] {
            let bed = profile.render(Duration::from_millis(400), SR, 0xBED);
            let frame = (SR as usize) / 20; // 50 ms → 20 Hz resolution
            for slot in 0..40 {
                let f = 300.0 + slot as f64 * 20.0;
                let est = profile.bin_leakage(f, 20.0, SR);
                for start in (0..bed.samples().len() - frame).step_by(frame / 2) {
                    let mag = Goertzel::new(f, SR).magnitude(&bed.samples()[start..start + frame]);
                    assert!(
                        mag < 3.0 * est,
                        "{} at {f} Hz: measured {mag:.3e} vs estimate {est:.3e}",
                        profile.name
                    );
                }
            }
        }
    }

    #[test]
    fn peak_bin_leakage_is_the_range_maximum() {
        let dc = AmbientProfile::datacenter();
        let peak = dc.peak_bin_leakage(300.0, 1100.0, 20.0, SR);
        let mut max_single = 0.0f64;
        for slot in 0..41 {
            max_single = max_single.max(dc.bin_leakage(300.0 + slot as f64 * 20.0, 20.0, SR));
        }
        assert!((peak - max_single).abs() < 1e-12);
    }

    #[test]
    fn datacenter_is_much_louder_than_office() {
        let dc = AmbientProfile::datacenter().render(SEC, SR, 1);
        let office = AmbientProfile::office().render(SEC, SR, 1);
        // 35 dB difference → ~56× in amplitude.
        assert!(dc.rms() > 30.0 * office.rms());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = AmbientProfile::datacenter();
        let a = p.render(Duration::from_millis(200), SR, 9);
        let b = p.render(Duration::from_millis(200), SR, 9);
        assert_eq!(a.samples(), b.samples());
        let c = p.render(Duration::from_millis(200), SR, 10);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn datacenter_has_hum_lines() {
        use mdn_audio::spectral::Spectrum;
        let bed = AmbientProfile::datacenter().render(Duration::from_secs(2), SR, 4);
        let spec = Spectrum::of(&bed);
        // 120 Hz hum should stand above the neighbouring broadband floor.
        let hum = spec.magnitude_at(120.0);
        let floor = spec.magnitude_at(95.0).max(spec.magnitude_at(145.0));
        assert!(hum > 1.5 * floor, "hum {hum} floor {floor}");
    }

    #[test]
    fn windowed_render_matches_from_zero_render() {
        for profile in [
            AmbientProfile::quiet(),
            AmbientProfile::office(),
            AmbientProfile::datacenter(),
        ] {
            let full = profile.render(Duration::from_millis(600), SR, 7);
            let w = Window::new(Duration::from_millis(250), Duration::from_millis(200));
            let windowed = profile.render_window(w, SR, 7);
            let (a, b) = w.sample_range(SR);
            assert_eq!(
                windowed.samples(),
                &full.samples()[a..b],
                "{}: windowed ambient diverged",
                profile.name
            );
        }
    }

    #[test]
    fn zero_duration_is_empty() {
        assert!(AmbientProfile::office()
            .render(Duration::ZERO, SR, 1)
            .is_empty());
    }
}
