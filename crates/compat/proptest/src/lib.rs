//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / `any` / `Just` / tuple / collection /
//! option strategies, `prop_map`, `prop_oneof!`, and the
//! `prop_assert*` macros. Two deliberate simplifications versus the
//! real crate:
//!
//! * **No shrinking.** A failing case panics with the case number and
//!   the failed assertion; inputs are reproducible because…
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so every run of a given test explores the same
//!   cases. Flakes cannot appear or vanish between CI runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chain a value-dependent strategy.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject generated values that fail `pred` (resampled, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erase for heterogeneous unions ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe sampling, for boxed strategies.
trait SampleObj {
    type Value;
    fn sample_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> SampleObj for S {
    type Value = S::Value;
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn SampleObj<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 samples in a row", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A union of same-valued strategies, sampled uniformly.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f64, f32);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty int range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty int range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a full-range canonical strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one canonical value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite and sign-symmetric; magnitude up to ±1e6.
        (rng.next_f64() * 2.0 - 1.0) * 1e6
    }
}

/// The canonical strategy for `T` (full range for integers).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `Vec` strategies.
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements
    /// come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub struct OptionStrategy<S>(S);

    /// Build an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Alias namespace, mirroring `proptest::prop::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed assertion inside a property body.
pub type TestCaseError = String;

/// Test-runner internals used by the generated code.
pub mod runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Run `body` against `cases` samples of `strategy`; panic on the
    /// first failure with the case number.
    pub fn run<S: Strategy>(
        name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::from_name(name);
        for case in 0..config.cases {
            if let Err(e) = body(strategy.sample(&mut rng)) {
                panic!("property '{name}' failed at case {case}/{}: {e}", config.cases);
            }
        }
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::runner::run(stringify!($name), &config, &strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        // `match` keeps scrutinee temporaries alive across the comparison,
        // exactly like `std::assert_eq!`.
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err(format!(
                        "assert_eq failed ({}:{}): {:?} != {:?}",
                        file!(),
                        line!(),
                        l,
                        r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err(format!("{}: {:?} != {:?}", format!($($fmt)+), l, r));
                }
            }
        }
    };
}

/// Skip the current case unless `cond` holds (counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniformly choose among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn ranges_and_maps(x in 0u32..10, f in 0.5f64..1.0, v in prop::collection::vec(0usize..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!((0.5..1.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(matches!(choice, 1 | 2 | 5 | 6), "got {choice}");
        }

        #[test]
        fn options_hit_both_variants(opts in prop::collection::vec(prop::option::of(0u8..5), 32..33)) {
            let nones = opts.iter().filter(|o| o.is_none()).count();
            prop_assert!(nones < 32, "all none");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::runner::run(
            "always_fails",
            &ProptestConfig::with_cases(3),
            &(0u32..10),
            |_| Err("boom".to_string()),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
