//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: `StdRng::seed_from_u64` plus
//! `Rng::gen_range` over float and integer ranges. The generator is a
//! splitmix64 stream — deterministic for a given seed, but *not* the
//! same stream as the real crate's ChaCha12 `StdRng`. Nothing in the
//! repo pins values derived from `StdRng` output, only statistical
//! properties, so the substitution is behavior-compatible.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f64);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&f));
            let i = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&i));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
