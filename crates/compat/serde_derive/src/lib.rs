//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro` alone (no syn/quote — the build
//! environment cannot fetch them). Supports exactly what the workspace
//! derives on: non-generic structs with named fields. Each field must
//! itself implement `serde::Serialize`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let name = struct_name(&tokens).expect("serde stub: #[derive(Serialize)] needs a struct");
    let fields = named_fields(&tokens)
        .unwrap_or_else(|| panic!("serde stub: struct {name} must have named fields"));
    let members: String = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{members}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde stub: generated impl parses")
}

/// Derive `serde::Deserialize` for a named-field struct.
///
/// Semantics chosen for spec-file ergonomics: the generated impl starts
/// from `Default::default()` (the struct must implement `Default`) and
/// overlays whichever keys are present, so sparse inputs stay sparse;
/// any key that is not a field is rejected with
/// `serde::DeError::unknown_field`, so typos fail loudly. Nested errors
/// carry the field name on their path.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let name = struct_name(&tokens).expect("serde stub: #[derive(Deserialize)] needs a struct");
    let fields = named_fields(&tokens)
        .unwrap_or_else(|| panic!("serde stub: struct {name} must have named fields"));
    let arms: String = fields
        .iter()
        .map(|f| {
            format!(
                "\"{f}\" => out.{f} = serde::Deserialize::from_value(val)\
                     .map_err(|e| e.at(\"{f}\"))?,"
            )
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 let fields = match v {{\n\
                     serde::Value::Object(fields) => fields,\n\
                     other => return Err(serde::DeError::expected(\"an object\", other)),\n\
                 }};\n\
                 let mut out = <{name} as ::std::default::Default>::default();\n\
                 for (k, val) in fields.iter() {{\n\
                     match k.as_str() {{\n\
                         {arms}\n\
                         other => return Err(serde::DeError::unknown_field(other, \"{name}\")),\n\
                     }}\n\
                 }}\n\
                 Ok(out)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde stub: generated impl parses")
}

/// The identifier following the `struct` keyword.
fn struct_name(tokens: &[TokenTree]) -> Option<String> {
    let mut saw_struct = false;
    for t in tokens {
        match t {
            TokenTree::Ident(i) if i.to_string() == "struct" => saw_struct = true,
            TokenTree::Ident(i) if saw_struct => return Some(i.to_string()),
            _ => {}
        }
    }
    None
}

/// Field names inside the struct's brace group: the identifier
/// immediately before each top-level `:`, with attributes and
/// visibility skipped.
fn named_fields(tokens: &[TokenTree]) -> Option<Vec<String>> {
    let body = tokens.iter().rev().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    })?;
    let inner: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut angle_depth = 0i32;
    // Once a field's `name:` is consumed everything up to the next
    // top-level comma is its type (which may contain `::` paths and
    // idents of its own) and must be skipped.
    let mut in_type = false;
    for t in &inner {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                in_type = false;
                last_ident = None;
            }
            _ if in_type => {}
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 => {
                if let Some(name) = last_ident.take() {
                    fields.push(name);
                    in_type = true;
                }
            }
            TokenTree::Ident(i) if angle_depth == 0 => {
                let s = i.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    Some(fields)
}
