//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes anything implementing the stub `serde::Serialize` into
//! JSON text (pretty form matches real serde_json's two-space
//! indentation), parses JSON text back into [`Value`], and provides
//! the [`json!`] constructor macro. Floats print via `{:?}` which,
//! like the real crate, keeps a trailing `.0` on integral values.

pub use serde::Value;
use std::fmt;

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the failure, when parsing.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Convert any `Serialize` value to a [`Value`] (used by [`json!`]).
pub fn to_value_of<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn err(msg: impl Into<String>, offset: usize) -> Error {
    Error {
        msg: msg.into(),
        offset,
    }
}

/// Serialize compactly.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json refuses non-finite floats; emitting
                // null keeps the artifact parseable instead of panicking.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(fields) => write_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
            let (k, v) = &fields[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end", *pos)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err("expected ':'", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(format!("expected '{lit}'"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("bad number", start))?;
    if text.is_empty() {
        return Err(err("expected value", start));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| err("bad number", start))
}

/// Build a [`Value`] from JSON-ish syntax. Supports object and array
/// literals, `null`, and arbitrary `Serialize` expressions (including
/// multi-token expressions like method chains) in value position —
/// implemented as a token muncher, like the real crate's macro, because
/// a one-level `$value:tt` matcher cannot absorb expression values.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // --- array munching: accumulate element expressions ---
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // --- object munching: (key tokens) then a value, entry by entry ---
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // --- entry points ---
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value_of(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_roundtrips_through_parser() {
        let v = json!({
            "bench": "demo",
            "count": 3,
            "ratio": 1.5,
            "rows": [1, 2, 3],
            "none": null,
            "nested": { "ok": true },
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("  \"bench\": \"demo\""));
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.93f64).unwrap(), "0.93");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "a\nb", "n": -4, "f": 2.5e-1}"#).unwrap();
        assert_eq!(v["s"], "a\nb");
        assert_eq!(v["n"], -4);
        assert_eq!(v["f"], 0.25);
    }

    #[test]
    fn serialize_expressions_in_json_macro() {
        let rows = vec![1u32, 2, 3];
        let opt: Option<f64> = None;
        let v = json!({ "rows": rows, "speedup": opt });
        assert_eq!(v["rows"][2], 3);
        assert!(v["speedup"].is_null());
    }
}
