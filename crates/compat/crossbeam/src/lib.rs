//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the bounded MPMC channel surface the workspace uses is
//! provided, backed by `std::sync::mpsc::sync_channel`. Blocking send
//! with backpressure, channel close on sender drop, and blocking
//! receiver iteration all behave like the real crate for the
//! single-producer single-consumer shape `mdn-core::live` relies on.

/// Channel types.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The channel is disconnected; the payload is returned.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty or disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum RecvError {
        /// No senders remain.
        Disconnected,
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocking send; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError::Disconnected)
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self.0.into_iter())
        }
    }

    /// Blocking iterator that ends when the channel closes.
    pub struct IntoIter<T>(mpsc::IntoIter<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_receive_and_close() {
        let (tx, rx) = bounded::<u32>(2);
        let worker = std::thread::spawn(move || rx.into_iter().sum::<u32>());
        for i in 1..=4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 10);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
