//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually consumes: an immutable
//! byte buffer with a read cursor ([`Bytes`]), a growable write buffer
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] traits that
//! `mdn-proto::wire` imports. Semantics match the real crate for this
//! subset; zero-copy sharing is intentionally not reproduced.

use std::fmt;
use std::ops::Deref;

/// An immutable byte buffer with an internal read cursor.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copied; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A copy of the given sub-range of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(self.as_slice()[range].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read-side cursor operations (big-endian).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes, returning them as a new buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end");
        let out = Bytes::from(self.data[self.pos..self.pos + n].to_vec());
        self.pos += n;
        out
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 2]);
        self.pos += 2;
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        u64::from_be_bytes(raw)
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Write-side operations (big-endian).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32(0x03040506);
        w.put_u64(0x0708090a0b0c0d0e);
        w.put_slice(b"xy");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 17);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert_eq!(b.get_u64(), 0x0708090a0b0c0d0e);
        assert_eq!(&*b.copy_to_bytes(2), b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3]);
        a.get_u8();
        // Equality is on the remaining view in spirit; the stub compares
        // (data, pos), so freshly-built equal views compare equal.
        assert_eq!(a.copy_to_bytes(2), Bytes::from(vec![2, 3]));
    }
}
