//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's quantitative benchmarks are hand-rolled harnesses
//! that write `BENCH_*.json` themselves; the criterion-based benches
//! exist for interactive exploration. This stand-in keeps them
//! compiling and runnable offline: every benchmark executes its
//! routine once and prints the elapsed time. No statistics, warm-up,
//! or HTML reports.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_once(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// CLI configuration (the real crate parses harness flags; ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final report (the real crate prints summary statistics; no-op).
    pub fn final_summary(&mut self) {}
}

fn run_once(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    let start = Instant::now();
    f(&mut b);
    let total = start.elapsed();
    eprintln!("bench {name}: {:.3} ms (single pass)", total.as_secs_f64() * 1e3);
}

/// Measures one routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run the routine once (the real crate samples repeatedly).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
    }

    /// Run setup + routine once.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Batch sizing hint (ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_once(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_once(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Sample-count hint (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("demo", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 2), &2, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
