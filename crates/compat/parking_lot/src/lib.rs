//! Offline stand-in for the `parking_lot` crate.
//!
//! A [`Mutex`] with the real crate's panic-free `lock()` signature,
//! implemented over `std::sync::Mutex`. Poisoning is swallowed (the
//! data is returned anyway), matching parking_lot's no-poisoning
//! semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
