//! Offline stand-in for the `serde` crate.
//!
//! The real serde's visitor architecture is far more than this
//! workspace needs: every consumer derives `Serialize`/`Deserialize` on
//! plain structs and feeds them to `serde_json`. This stand-in collapses
//! the data model to a single [`Value`] tree and two trait methods,
//! [`Serialize::to_value`] and [`Deserialize::from_value`]. The derive
//! macros live in `serde_derive` and are re-exported here so
//! `#[derive(serde::Serialize, serde::Deserialize)]` works unchanged.
//!
//! Deserialization semantics (deliberately spec-file friendly):
//!
//! * a struct deserializes by overlaying the present keys onto
//!   `Default::default()` — sparse configs stay sparse;
//! * unknown keys are rejected with the offending path, so a typo in a
//!   scenario file fails loudly instead of silently defaulting;
//! * `std::time::Duration` round-trips losslessly as
//!   `{"secs": u64, "nanos": u32}` and additionally accepts the
//!   `{"ms": n}` / `{"us": n}` shorthands in hand-written specs.

// Let the derive-generated `serde::...` paths resolve inside this crate
// too, so the tests below can exercise the real macros.
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree (re-exported by `serde_json` as its
/// `Value`). Object keys keep insertion order so emitted JSON is
/// stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key, or `Null` for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned integer view, if lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn num_eq(v: &Value, other: f64) -> bool {
    v.as_f64() == Some(other)
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                num_eq(self, *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                num_eq(other, *self as f64)
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Conversion to the [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Tuples serialize as fixed-length JSON arrays, matching real serde.
macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    /// Lossless, matching real serde's representation.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), (self.as_secs()).to_value()),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

/// What a [`Value`] is, for error messages.
fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Int(_) | Value::UInt(_) => "an integer",
        Value::Float(_) => "a number",
        Value::Str(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

/// A deserialization failure, carrying the dotted path from the root of
/// the value tree to the offending node.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Dotted field path (`hall.cell.slots_per_switch`), empty at root.
    pub path: String,
    /// What went wrong there.
    pub msg: String,
}

impl DeError {
    /// An error with no path context yet.
    pub fn new(msg: impl Into<String>) -> Self {
        Self {
            path: String::new(),
            msg: msg.into(),
        }
    }

    /// "expected X, got Y" for a shape mismatch.
    pub fn expected(want: &str, got: &Value) -> Self {
        Self::new(format!("expected {want}, got {}", kind_name(got)))
    }

    /// A key the target type does not have — a typo in the input.
    pub fn unknown_field(field: &str, ty: &str) -> Self {
        Self::new(format!("unknown field `{field}` in {ty}"))
    }

    /// Prepend a path segment (used while unwinding nested calls).
    pub fn at(mut self, segment: &str) -> Self {
        self.path = if self.path.is_empty() {
            segment.to_string()
        } else {
            format!("{segment}.{}", self.path)
        };
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "at `{}`: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Build `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            other => Err(DeError::expected("an unsigned integer", other)),
        }
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Ok(*u as i64),
            other => Err(DeError::expected("an integer", other)),
        }
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = u64::from_value(v)?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = i64::from_value(v)?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item).map_err(|e| e.at(&format!("[{i}]"))))
                .collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($t::from_value(&items[$n]).map_err(|e| e.at(&format!("[{}]", $n)))?,)+
                    )),
                    other => Err(DeError::expected(
                        concat!("an array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}

impl_de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for std::time::Duration {
    /// Accepts `{"secs": u64, "nanos": u32}` (the serialized form; both
    /// keys optional) or the `{"ms": n}` / `{"us": n}` shorthands.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = match v {
            Value::Object(fields) => fields,
            other => return Err(DeError::expected("a duration object", other)),
        };
        let mut out = std::time::Duration::ZERO;
        for (k, val) in fields {
            match k.as_str() {
                "secs" => out += std::time::Duration::from_secs(u64::from_value(val).map_err(|e| e.at("secs"))?),
                "nanos" => out += std::time::Duration::from_nanos(u64::from_value(val).map_err(|e| e.at("nanos"))?),
                "ms" => out += std::time::Duration::from_millis(u64::from_value(val).map_err(|e| e.at("ms"))?),
                "us" => out += std::time::Duration::from_micros(u64::from_value(val).map_err(|e| e.at("us"))?),
                other => return Err(DeError::unknown_field(other, "Duration")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![
            ("x".into(), Value::Int(7)),
            ("name".into(), Value::Str("ok".into())),
        ]);
        assert_eq!(v["x"], 7);
        assert_eq!(v["name"], "ok");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn deserialize_round_trip_and_unknown_key() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Cfg {
            x: u32,
            ratio: f64,
            label: String,
            window: std::time::Duration,
            extra: Option<u64>,
            band: (f64, f64),
        }
        impl Default for Cfg {
            fn default() -> Self {
                Self {
                    x: 1,
                    ratio: 0.5,
                    label: "default".into(),
                    window: std::time::Duration::from_millis(300),
                    extra: None,
                    band: (100.0, 15_000.0),
                }
            }
        }
        let cfg = Cfg {
            x: 9,
            ratio: 2.25,
            label: "hall".into(),
            window: std::time::Duration::new(1, 500),
            extra: Some(7),
            band: (20.0, 40_000.0),
        };
        let back = Cfg::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);

        // Sparse overlay keeps defaults for absent keys.
        let sparse = Value::Object(vec![("x".into(), Value::Int(3))]);
        let got = Cfg::from_value(&sparse).unwrap();
        assert_eq!(got.x, 3);
        assert_eq!(got.label, "default");

        // Typos are rejected with a path.
        let typo = Value::Object(vec![("lable".into(), Value::Str("oops".into()))]);
        let err = Cfg::from_value(&typo).unwrap_err();
        assert!(err.msg.contains("unknown field `lable`"), "{err}");

        // Nested errors carry the field path.
        let bad = Value::Object(vec![("ratio".into(), Value::Str("high".into()))]);
        let err = Cfg::from_value(&bad).unwrap_err();
        assert_eq!(err.path, "ratio");

        // Duration shorthands.
        let ms = Value::Object(vec![(
            "window".into(),
            Value::Object(vec![("ms".into(), Value::Int(50))]),
        )]);
        assert_eq!(
            Cfg::from_value(&ms).unwrap().window,
            std::time::Duration::from_millis(50)
        );
    }

    #[test]
    fn derive_on_a_struct() {
        #[derive(Serialize)]
        struct R {
            x: u32,
            name: &'static str,
            v: Vec<f64>,
        }
        let val = R {
            x: 7,
            name: "ok",
            v: vec![1.5],
        }
        .to_value();
        assert_eq!(val["x"], 7);
        assert_eq!(val["name"], "ok");
        assert_eq!(val["v"][0], 1.5);
    }
}
