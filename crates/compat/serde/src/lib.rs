//! Offline stand-in for the `serde` crate.
//!
//! The real serde's visitor architecture is far more than this
//! workspace needs: every consumer derives `Serialize` on plain
//! structs and feeds them to `serde_json`. This stand-in collapses the
//! data model to a single [`Value`] tree and one trait method,
//! [`Serialize::to_value`]. The derive macro lives in `serde_derive`
//! and is re-exported here so `#[derive(serde::Serialize)]` works
//! unchanged.

pub use serde_derive::Serialize;

/// A JSON-shaped value tree (re-exported by `serde_json` as its
/// `Value`). Object keys keep insertion order so emitted JSON is
/// stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key, or `Null` for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned integer view, if lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn num_eq(v: &Value, other: f64) -> bool {
    v.as_f64() == Some(other)
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                num_eq(self, *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                num_eq(other, *self as f64)
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Conversion to the [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Tuples serialize as fixed-length JSON arrays, matching real serde.
macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![
            ("x".into(), Value::Int(7)),
            ("name".into(), Value::Str("ok".into())),
        ]);
        assert_eq!(v["x"], 7);
        assert_eq!(v["name"], "ok");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn derive_on_a_struct() {
        #[derive(Serialize)]
        struct R {
            x: u32,
            name: &'static str,
            v: Vec<f64>,
        }
        let val = R {
            x: 7,
            name: "ok",
            v: vec![1.5],
        }
        .to_value();
        assert_eq!(val["x"], 7);
        assert_eq!(val["name"], "ok");
        assert_eq!(val["v"][0], 1.5);
    }
}
