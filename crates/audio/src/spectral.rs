//! Magnitude spectra and peak picking.
//!
//! This is the analysis half of the paper's Figure 2a ("FFT of audio from 5
//! switches"): take a windowed frame, compute its amplitude spectrum, and
//! find the spectral peaks, with quadratic interpolation so a tone between
//! bins is still located to sub-bin accuracy.

use crate::fft::{Complex, FftPlanner};
use crate::signal::Signal;
use crate::window::WindowKind;

/// Reusable buffers for [`Spectrum::compute_into`]: the windowed frame, the
/// complex FFT buffer, and the window coefficients (cached per
/// kind × length, which a frame loop hits every time). One per worker
/// thread; after the first frame the spectral hot path allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct SpectrumScratch {
    frame: Vec<f32>,
    fft: Vec<Complex>,
    win: Vec<f64>,
    win_gain: f64,
    win_key: Option<(WindowKind, usize)>,
}

impl SpectrumScratch {
    fn refresh_window(&mut self, kind: WindowKind, n: usize) {
        if self.win_key != Some((kind, n)) {
            self.win = kind.coefficients(n);
            // Mean of the coefficients — identical arithmetic to
            // `WindowKind::coherent_gain`.
            self.win_gain = if n == 0 {
                0.0
            } else {
                self.win.iter().sum::<f64>() / n as f64
            };
            self.win_key = Some((kind, n));
        }
    }
}

/// An amplitude spectrum: one magnitude per non-redundant FFT bin, with the
/// metadata needed to map bins to Hz and magnitudes back to amplitudes.
#[derive(Debug, Clone)]
pub struct Spectrum {
    magnitudes: Vec<f64>,
    sample_rate: u32,
    fft_size: usize,
}

impl Spectrum {
    /// An empty spectrum, as the reusable target for
    /// [`Spectrum::compute_into`].
    pub fn empty(sample_rate: u32) -> Self {
        Self {
            magnitudes: Vec::new(),
            sample_rate,
            fft_size: 1,
        }
    }

    /// Compute the spectrum of `signal` with the given window, zero-padding
    /// to the next power of two (at least `min_fft` if given). Magnitudes
    /// are normalized so a sinusoid of amplitude `a` centred on a bin reads
    /// ≈ `a` (window coherent gain compensated).
    pub fn compute(
        signal: &Signal,
        window: WindowKind,
        min_fft: Option<usize>,
        planner: &mut FftPlanner,
    ) -> Self {
        let mut out = Spectrum::empty(signal.sample_rate());
        Spectrum::compute_into(
            signal.samples(),
            signal.sample_rate(),
            window,
            min_fft,
            planner,
            &mut SpectrumScratch::default(),
            &mut out,
        );
        out
    }

    /// Allocation-reusing spectrum computation over a raw sample slice.
    ///
    /// Identical numerics to [`Spectrum::compute`], but the windowed frame,
    /// the FFT buffer, the window coefficients, and the output magnitudes
    /// all live in `scratch`/`out` and are reused across calls — the shape
    /// a frame-by-frame detector loop wants, with no per-frame `Signal`
    /// clone and no per-frame allocation.
    pub fn compute_into(
        samples: &[f32],
        sample_rate: u32,
        window: WindowKind,
        min_fft: Option<usize>,
        planner: &mut FftPlanner,
        scratch: &mut SpectrumScratch,
        out: &mut Spectrum,
    ) {
        let frame_len = samples.len();
        scratch.refresh_window(window, frame_len);
        let SpectrumScratch {
            frame,
            fft,
            win,
            win_gain,
            ..
        } = &mut *scratch;
        frame.clear();
        frame.extend_from_slice(samples);
        if window != WindowKind::Rectangular {
            for (s, &w) in frame.iter_mut().zip(win.iter()) {
                *s = (*s as f64 * w) as f32;
            }
        }
        planner.forward_real_into(frame, min_fft, fft);
        let n = fft.len();
        let gain = *win_gain;
        // Amplitude normalization: 2/N_frame for a one-sided spectrum,
        // divided by the window's coherent gain.
        let scale = if frame_len == 0 || gain == 0.0 {
            0.0
        } else {
            2.0 / (frame_len as f64 * gain)
        };
        out.magnitudes.clear();
        out.magnitudes
            .extend(fft[..n / 2 + 1].iter().map(|c| c.norm() * scale));
        out.sample_rate = sample_rate;
        out.fft_size = n;
    }

    /// Convenience: Hann window, default padding, fresh planner.
    pub fn of(signal: &Signal) -> Self {
        Spectrum::compute(signal, WindowKind::Hann, None, &mut FftPlanner::new())
    }

    /// Magnitude per bin (bin 0 = DC, last bin = Nyquist).
    pub fn magnitudes(&self) -> &[f64] {
        &self.magnitudes
    }

    /// Width of one bin in Hz.
    pub fn bin_hz(&self) -> f64 {
        self.sample_rate as f64 / self.fft_size as f64
    }

    /// Centre frequency of bin `k`.
    pub fn bin_to_hz(&self, k: usize) -> f64 {
        k as f64 * self.bin_hz()
    }

    /// The bin whose centre is nearest `freq_hz`.
    pub fn hz_to_bin(&self, freq_hz: f64) -> usize {
        ((freq_hz / self.bin_hz()).round() as usize).min(self.magnitudes.len().saturating_sub(1))
    }

    /// Magnitude at the bin nearest `freq_hz`.
    pub fn magnitude_at(&self, freq_hz: f64) -> f64 {
        self.magnitudes[self.hz_to_bin(freq_hz)]
    }

    /// The underlying FFT size used.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// The signal's sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Find local maxima above `threshold`, separated by at least
    /// `min_separation_hz`, strongest first.
    pub fn peaks(&self, threshold: f64, min_separation_hz: f64) -> Vec<Peak> {
        let mags = &self.magnitudes;
        let mut candidates: Vec<Peak> = Vec::new();
        for k in 1..mags.len().saturating_sub(1) {
            if mags[k] >= threshold && mags[k] >= mags[k - 1] && mags[k] > mags[k + 1] {
                let (freq, mag) = self.interpolate_peak(k);
                candidates.push(Peak {
                    freq_hz: freq,
                    magnitude: mag,
                    bin: k,
                });
            }
        }
        candidates.sort_by(|a, b| b.magnitude.total_cmp(&a.magnitude));
        // Greedy non-maximum suppression by frequency distance.
        let mut kept: Vec<Peak> = Vec::new();
        for c in candidates {
            if kept
                .iter()
                .all(|p| (p.freq_hz - c.freq_hz).abs() >= min_separation_hz)
            {
                kept.push(c);
            }
        }
        kept
    }

    /// Quadratic (parabolic) interpolation of the peak around bin `k` in the
    /// log-magnitude domain; returns `(freq_hz, magnitude)`.
    fn interpolate_peak(&self, k: usize) -> (f64, f64) {
        let mags = &self.magnitudes;
        if k == 0 || k + 1 >= mags.len() {
            return (self.bin_to_hz(k), mags[k]);
        }
        let eps = 1e-30;
        let (a, b, c) = (
            (mags[k - 1] + eps).ln(),
            (mags[k] + eps).ln(),
            (mags[k + 1] + eps).ln(),
        );
        let denom = a - 2.0 * b + c;
        if denom.abs() < 1e-18 {
            return (self.bin_to_hz(k), mags[k]);
        }
        let delta = 0.5 * (a - c) / denom;
        let delta = delta.clamp(-0.5, 0.5);
        let freq = (k as f64 + delta) * self.bin_hz();
        let mag = (b - 0.25 * (a - c) * delta).exp();
        (freq, mag)
    }

    /// Total signal power in the band `[lo_hz, hi_hz]` (sum of squared bin
    /// magnitudes).
    pub fn band_power(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        let lo = self.hz_to_bin(lo_hz.min(hi_hz));
        let hi = self.hz_to_bin(hi_hz.max(lo_hz));
        self.magnitudes[lo..=hi].iter().map(|m| m * m).sum()
    }

    /// Sum of absolute per-bin magnitude differences against another
    /// spectrum of the same shape — the paper's Figure 7 fan-failure
    /// statistic.
    ///
    /// # Panics
    /// Panics if the spectra have different bin counts.
    pub fn amplitude_difference(&self, other: &Spectrum) -> f64 {
        assert_eq!(
            self.magnitudes.len(),
            other.magnitudes.len(),
            "spectra must have the same FFT size"
        );
        self.magnitudes
            .iter()
            .zip(&other.magnitudes)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

/// A detected spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Interpolated peak frequency in Hz.
    pub freq_hz: f64,
    /// Interpolated peak magnitude (amplitude units).
    pub magnitude: f64,
    /// The FFT bin the peak sits on.
    pub bin: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{render_mixture, Tone};
    use std::time::Duration;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, amp: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), amp).render(SR)
    }

    #[test]
    fn single_tone_peak_located_and_scaled() {
        let s = tone(1000.0, 100, 0.6);
        let spec = Spectrum::of(&s);
        let peaks = spec.peaks(0.1, 50.0);
        assert_eq!(peaks.len(), 1);
        assert!(
            (peaks[0].freq_hz - 1000.0).abs() < 3.0,
            "freq {}",
            peaks[0].freq_hz
        );
        assert!(
            (peaks[0].magnitude - 0.6).abs() < 0.08,
            "mag {}",
            peaks[0].magnitude
        );
    }

    #[test]
    fn off_bin_tone_interpolated() {
        // Pick a frequency guaranteed to fall between bins.
        let spec0 = Spectrum::of(&tone(1000.0, 100, 0.5));
        let half_bin = spec0.bin_hz() / 2.0;
        let f = 1000.0 + half_bin;
        let spec = Spectrum::of(&tone(f, 100, 0.5));
        let peaks = spec.peaks(0.1, 50.0);
        assert!((peaks[0].freq_hz - f).abs() < spec.bin_hz() * 0.3);
    }

    #[test]
    fn five_switch_mixture_resolved() {
        // Figure 2a: five switches, disjoint frequencies, all identified.
        let freqs = [600.0, 900.0, 1300.0, 1800.0, 2400.0];
        let tones: Vec<Tone> = freqs
            .iter()
            .map(|&f| Tone::new(f, Duration::from_millis(100), 0.3))
            .collect();
        let s = render_mixture(&tones, SR);
        let spec = Spectrum::of(&s);
        let peaks = spec.peaks(0.05, 50.0);
        assert_eq!(peaks.len(), 5, "peaks: {peaks:?}");
        let mut found: Vec<f64> = peaks.iter().map(|p| p.freq_hz).collect();
        found.sort_by(f64::total_cmp);
        for (f, p) in freqs.iter().zip(found) {
            assert!((f - p).abs() < 5.0, "expected {f}, got {p}");
        }
    }

    #[test]
    fn min_separation_suppresses_sidelobe_duplicates() {
        let s = tone(1000.0, 50, 0.8);
        let spec = Spectrum::of(&s);
        // Threshold above the Hann sidelobe level (−31 dB of 0.8 ≈ 0.022).
        let peaks = spec.peaks(0.05, 40.0);
        let near_1k = peaks
            .iter()
            .filter(|p| (p.freq_hz - 1000.0).abs() < 150.0)
            .count();
        assert_eq!(near_1k, 1, "peaks: {peaks:?}");
    }

    #[test]
    fn band_power_isolates_band() {
        let mut s = tone(500.0, 100, 0.5);
        s.mix_at(&tone(3000.0, 100, 0.5), 0);
        let spec = Spectrum::of(&s);
        let low = spec.band_power(400.0, 600.0);
        let mid = spec.band_power(1000.0, 2000.0);
        let high = spec.band_power(2900.0, 3100.0);
        assert!(low > 100.0 * mid);
        assert!(high > 100.0 * mid);
    }

    #[test]
    fn amplitude_difference_zero_for_identical() {
        let spec = Spectrum::of(&tone(700.0, 100, 0.5));
        assert_eq!(spec.amplitude_difference(&spec.clone()), 0.0);
    }

    #[test]
    fn amplitude_difference_large_for_on_vs_off() {
        let on = Spectrum::of(&tone(700.0, 100, 0.5));
        let off = Spectrum::of(&Signal::silence(Duration::from_millis(100), SR));
        assert!(on.amplitude_difference(&off) > 0.4);
    }

    #[test]
    #[should_panic(expected = "same FFT size")]
    fn amplitude_difference_rejects_shape_mismatch() {
        let a = Spectrum::of(&tone(700.0, 100, 0.5));
        let b = Spectrum::of(&tone(700.0, 200, 0.5));
        a.amplitude_difference(&b);
    }

    #[test]
    fn hz_bin_roundtrip() {
        let spec = Spectrum::of(&tone(1000.0, 100, 0.5));
        let k = spec.hz_to_bin(1000.0);
        assert!((spec.bin_to_hz(k) - 1000.0).abs() <= spec.bin_hz() / 2.0 + 1e-9);
    }

    #[test]
    fn empty_signal_spectrum_is_silent() {
        let spec = Spectrum::of(&Signal::empty(SR));
        assert!(spec.magnitudes().iter().all(|&m| m == 0.0));
    }
}
