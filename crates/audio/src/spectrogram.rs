//! Short-time Fourier transform spectrograms.
//!
//! Every spectrogram panel in the paper (Figures 3b, 4, 5b/5d, 6) is an
//! STFT of the captured microphone signal; the mel-scaled variants layer a
//! mel filterbank on top (see [`crate::mel`]).

use crate::fft::FftPlanner;
use crate::signal::Signal;
use crate::spectral::Spectrum;
use crate::window::WindowKind;
use std::time::Duration;

/// STFT parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StftConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between consecutive frames in samples.
    pub hop: usize,
    /// Window applied to each frame.
    pub window: WindowKind,
    /// Zero-pad each frame to at least this FFT size (power of two applied
    /// automatically).
    pub min_fft: Option<usize>,
}

impl Default for StftConfig {
    /// [`StftConfig::default_for`] at the testbed's 44.1 kHz.
    fn default() -> Self {
        Self::default_for(44_100)
    }
}

impl StftConfig {
    /// Check the invariants the compute path assumes: zero-length frames
    /// or hops would loop forever (or divide by zero) in
    /// [`Spectrogram::compute`]. (`min_fft` needs no check — the FFT
    /// size is the next power of two of `max(frame_len, min_fft)`.)
    pub fn validate(&self) -> Result<(), mdn_obs::ConfigError> {
        if self.frame_len == 0 {
            return Err(mdn_obs::ConfigError::new(
                "frame_len",
                "analysis frames must be at least one sample",
            ));
        }
        if self.hop == 0 {
            return Err(mdn_obs::ConfigError::new(
                "hop",
                "a zero hop never advances past the first frame",
            ));
        }
        Ok(())
    }

    /// The pipeline default: ~46 ms frames with 50% overlap at 44.1 kHz —
    /// close to the paper's ~50 ms analysis windows.
    pub fn default_for(sample_rate: u32) -> Self {
        let frame_len = (sample_rate as usize * 46 / 1000)
            .next_power_of_two()
            .min(4096);
        Self {
            frame_len,
            hop: frame_len / 2,
            window: WindowKind::Hann,
            min_fft: None,
        }
    }

    /// A config with explicit frame/hop durations.
    pub fn with_timing(sample_rate: u32, frame: Duration, hop: Duration) -> Self {
        let frame_len = (frame.as_secs_f64() * sample_rate as f64).round() as usize;
        let hop_len = ((hop.as_secs_f64() * sample_rate as f64).round() as usize).max(1);
        Self {
            frame_len: frame_len.max(1),
            hop: hop_len,
            window: WindowKind::Hann,
            min_fft: None,
        }
    }
}

/// A time-frequency magnitude matrix: `frames × bins`.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// One amplitude spectrum per frame, in time order.
    frames: Vec<Vec<f64>>,
    /// Centre time of each frame, seconds.
    times: Vec<f64>,
    bin_hz: f64,
    sample_rate: u32,
}

impl Spectrogram {
    /// Compute the STFT of `signal` under `config`. Signals shorter than
    /// one frame produce an empty spectrogram.
    pub fn compute(signal: &Signal, config: &StftConfig) -> Self {
        let sr = signal.sample_rate();
        let samples = signal.samples();
        let mut planner = FftPlanner::new();
        let mut frames = Vec::new();
        let mut times = Vec::new();
        let mut bin_hz = 0.0;
        let mut start = 0usize;
        while start + config.frame_len <= samples.len() {
            let frame = signal.slice(start, start + config.frame_len);
            let spec = Spectrum::compute(&frame, config.window, config.min_fft, &mut planner);
            bin_hz = spec.bin_hz();
            times.push((start + config.frame_len / 2) as f64 / sr as f64);
            frames.push(spec.magnitudes().to_vec());
            start += config.hop;
        }
        Self {
            frames,
            times,
            bin_hz,
            sample_rate: sr,
        }
    }

    /// Number of time frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frequency bins per frame (0 if empty).
    pub fn num_bins(&self) -> usize {
        self.frames.first().map_or(0, Vec::len)
    }

    /// Magnitudes of frame `t`.
    pub fn frame(&self, t: usize) -> &[f64] {
        &self.frames[t]
    }

    /// All frames, time-major.
    pub fn frames(&self) -> &[Vec<f64>] {
        &self.frames
    }

    /// Centre time of frame `t` in seconds.
    pub fn time(&self, t: usize) -> f64 {
        self.times[t]
    }

    /// Frame centre times, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Width of a frequency bin in Hz.
    pub fn bin_hz(&self) -> f64 {
        self.bin_hz
    }

    /// Sample rate of the source signal.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The bin index nearest `freq_hz`.
    pub fn hz_to_bin(&self, freq_hz: f64) -> usize {
        ((freq_hz / self.bin_hz).round() as usize).min(self.num_bins().saturating_sub(1))
    }

    /// Time series of the magnitude at the bin nearest `freq_hz` — the
    /// "follow one switch's tone over time" view used by the queue
    /// monitoring figure.
    pub fn track_frequency(&self, freq_hz: f64) -> Vec<f64> {
        let bin = self.hz_to_bin(freq_hz);
        self.frames.iter().map(|f| f[bin]).collect()
    }

    /// For each frame, the frequency (Hz) of the strongest bin, or `None`
    /// when the frame's peak is below `threshold` — the "ridge" of the
    /// spectrogram, which traces the port-scan sweep of Figure 4c.
    pub fn ridge(&self, threshold: f64) -> Vec<Option<f64>> {
        self.frames
            .iter()
            .map(|frame| {
                let (k, &m) = frame
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("frames are non-empty");
                (m >= threshold).then_some(k as f64 * self.bin_hz)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{chirp, render_sequence, Tone};
    use std::time::Duration;

    const SR: u32 = 44_100;

    #[test]
    fn frame_count_matches_hop_arithmetic() {
        let s = Signal::silence(Duration::from_secs(1), SR);
        let cfg = StftConfig {
            frame_len: 1024,
            hop: 512,
            window: WindowKind::Hann,
            min_fft: None,
        };
        let sg = Spectrogram::compute(&s, &cfg);
        assert_eq!(sg.num_frames(), (44_100 - 1024) / 512 + 1);
        assert_eq!(sg.num_bins(), 513);
    }

    #[test]
    fn short_signal_yields_empty() {
        let s = Signal::silence(Duration::from_millis(1), SR);
        let cfg = StftConfig::default_for(SR);
        let sg = Spectrogram::compute(&s, &cfg);
        assert_eq!(sg.num_frames(), 0);
        assert_eq!(sg.num_bins(), 0);
    }

    #[test]
    fn track_frequency_follows_tone_onset() {
        let seq = [(
            Duration::from_millis(500),
            Tone::new(1000.0, Duration::from_millis(500), 0.8),
        )];
        let s = {
            let mut s = render_sequence(&seq, SR);
            s.pad_to(SR as usize); // 1 s total
            s
        };
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        let track = sg.track_frequency(1000.0);
        let first_half_max = track[..sg.num_frames() / 3]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let second_half_max = track[sg.num_frames() / 2..]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(second_half_max > 0.4);
        assert!(first_half_max < 0.05);
    }

    #[test]
    fn ridge_traces_a_chirp_upward() {
        let s = chirp(300.0, 3000.0, Duration::from_secs(1), 0.8, SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        let ridge: Vec<f64> = sg.ridge(0.05).into_iter().flatten().collect();
        assert!(ridge.len() > sg.num_frames() / 2);
        // Monotone-ish increase: last ridge point well above the first.
        assert!(ridge[ridge.len() - 1] > ridge[0] + 1000.0);
    }

    #[test]
    fn ridge_below_threshold_is_none() {
        let s = Signal::silence(Duration::from_secs(1), SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        assert!(sg.ridge(0.01).iter().all(Option::is_none));
    }

    #[test]
    fn times_increase_monotonically() {
        let s = Signal::silence(Duration::from_secs(1), SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        assert!(sg.times().windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn with_timing_config() {
        let cfg = StftConfig::with_timing(SR, Duration::from_millis(50), Duration::from_millis(25));
        assert_eq!(cfg.frame_len, 2205);
        assert_eq!(cfg.hop, 1103);
    }
}
