//! Tone synthesis.
//!
//! Generates the pure tones the paper's switches emit through their Pi
//! speakers, plus chirps and multi-tone mixtures used by the telemetry
//! experiments. Tones carry a short raised-cosine fade-in/out by default so
//! that abrupt onsets don't splatter energy across the spectrum (real
//! speakers can't step pressure instantaneously either).

use crate::signal::{duration_to_samples, sine_sample, Signal};
use std::f64::consts::PI;
use std::time::Duration;

/// Default onset/offset ramp applied to synthesized tones.
pub const DEFAULT_FADE: Duration = Duration::from_millis(2);

/// A pure-tone specification: the payload of a Music Protocol message made
/// audible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Duration of the tone.
    pub duration: Duration,
    /// Linear amplitude (1.0 = digital full scale).
    pub amplitude: f64,
    /// Initial phase in radians.
    pub phase: f64,
}

impl Tone {
    /// A tone with zero phase.
    pub fn new(freq_hz: f64, duration: Duration, amplitude: f64) -> Self {
        Self {
            freq_hz,
            duration,
            amplitude,
            phase: 0.0,
        }
    }

    /// Render the tone at `sample_rate` with the default fade.
    pub fn render(&self, sample_rate: u32) -> Signal {
        self.render_with_fade(sample_rate, DEFAULT_FADE)
    }

    /// Render the tone with an explicit raised-cosine fade length. The fade
    /// is clamped to half the tone length.
    pub fn render_with_fade(&self, sample_rate: u32, fade: Duration) -> Signal {
        let n = duration_to_samples(self.duration, sample_rate);
        let fade_n = duration_to_samples(fade, sample_rate).min(n / 2);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let mut v = self.amplitude * sine_sample(self.freq_hz, i, sample_rate, self.phase);
            if fade_n > 0 {
                if i < fade_n {
                    v *= raised_cosine(i as f64 / fade_n as f64);
                } else if i >= n - fade_n {
                    v *= raised_cosine((n - 1 - i) as f64 / fade_n as f64);
                }
            }
            samples.push(v as f32);
        }
        Signal::from_samples(samples, sample_rate)
    }
}

#[inline]
fn raised_cosine(x: f64) -> f64 {
    0.5 * (1.0 - (PI * x.clamp(0.0, 1.0)).cos())
}

/// Render a mixture of simultaneous tones (all starting at t = 0) into one
/// buffer whose length is the longest tone.
pub fn render_mixture(tones: &[Tone], sample_rate: u32) -> Signal {
    let mut out = Signal::empty(sample_rate);
    for tone in tones {
        let rendered = tone.render(sample_rate);
        out.mix_at(&rendered, 0);
    }
    out
}

/// Render a timed sequence of `(start, tone)` pairs into one buffer.
pub fn render_sequence(seq: &[(Duration, Tone)], sample_rate: u32) -> Signal {
    let mut out = Signal::empty(sample_rate);
    for (start, tone) in seq {
        let rendered = tone.render(sample_rate);
        out.mix_at_time(&rendered, *start);
    }
    out
}

/// A linear chirp sweeping `f0 → f1` over `duration`; used by calibration
/// tests and the port-scan figure's frequency sweep validation.
pub fn chirp(f0: f64, f1: f64, duration: Duration, amplitude: f64, sample_rate: u32) -> Signal {
    let n = duration_to_samples(duration, sample_rate);
    let dur_s = duration.as_secs_f64();
    let k = if dur_s > 0.0 { (f1 - f0) / dur_s } else { 0.0 };
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / sample_rate as f64;
        // Instantaneous phase of a linear chirp: 2π (f0 t + k t²/2).
        let phase = 2.0 * PI * (f0 * t + 0.5 * k * t * t);
        samples.push((amplitude * phase.sin()) as f32);
    }
    Signal::from_samples(samples, sample_rate)
}

/// A sine oscillator that keeps phase across renders, so a device emitting a
/// stream of tones produces a click-free output.
#[derive(Debug, Clone)]
pub struct Oscillator {
    sample_rate: u32,
    phase: f64,
}

impl Oscillator {
    /// Create an oscillator at the given sample rate.
    pub fn new(sample_rate: u32) -> Self {
        assert!(sample_rate > 0);
        Self {
            sample_rate,
            phase: 0.0,
        }
    }

    /// Render `duration` of a sine at `freq_hz`/`amplitude`, continuing from
    /// the oscillator's current phase; updates the phase for the next call.
    pub fn render(&mut self, freq_hz: f64, amplitude: f64, duration: Duration) -> Signal {
        let n = duration_to_samples(duration, self.sample_rate);
        let step = 2.0 * PI * freq_hz / self.sample_rate as f64;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push((amplitude * self.phase.sin()) as f32);
            self.phase += step;
        }
        self.phase %= 2.0 * PI;
        Signal::from_samples(samples, self.sample_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: u32 = 44_100;

    #[test]
    fn tone_length_matches_duration() {
        let t = Tone::new(440.0, Duration::from_millis(50), 0.5);
        let s = t.render(SR);
        assert_eq!(s.len(), 2205);
    }

    #[test]
    fn tone_peak_is_near_amplitude() {
        let t = Tone::new(440.0, Duration::from_millis(100), 0.5);
        let s = t.render(SR);
        assert!((s.peak() - 0.5).abs() < 0.01, "peak {}", s.peak());
    }

    #[test]
    fn fade_tapers_the_edges() {
        let t = Tone::new(1000.0, Duration::from_millis(50), 1.0);
        let s = t.render_with_fade(SR, Duration::from_millis(5));
        // The very first and last samples should be ~0; mid-buffer should not.
        assert!(s.samples()[0].abs() < 1e-3);
        assert!(s.samples()[s.len() - 1].abs() < 1e-2);
        let mid = s.len() / 2;
        let mid_peak = s.samples()[mid..mid + 50]
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(mid_peak > 0.9);
    }

    #[test]
    fn fade_clamps_for_tiny_tones() {
        // A 1 ms tone with a 10 ms fade must not panic or overrun.
        let t = Tone::new(1000.0, Duration::from_millis(1), 1.0);
        let s = t.render_with_fade(SR, Duration::from_millis(10));
        assert_eq!(s.len(), 44);
    }

    #[test]
    fn mixture_superimposes() {
        let tones = [
            Tone::new(500.0, Duration::from_millis(50), 0.3),
            Tone::new(700.0, Duration::from_millis(100), 0.3),
        ];
        let s = render_mixture(&tones, SR);
        assert_eq!(s.len(), 4410); // length of the longest tone
                                   // Energy should exceed that of either tone alone.
        let single = tones[1].render(SR);
        assert!(s.rms() > single.rms() * 1.05);
    }

    #[test]
    fn sequence_places_tones_in_time() {
        let seq = [
            (
                Duration::ZERO,
                Tone::new(500.0, Duration::from_millis(30), 0.5),
            ),
            (
                Duration::from_millis(100),
                Tone::new(700.0, Duration::from_millis(30), 0.5),
            ),
        ];
        let s = render_sequence(&seq, SR);
        // The gap between tones (40..90 ms) should be silent.
        let gap = s.window(crate::signal::Window::new(
            Duration::from_millis(40),
            Duration::from_millis(50),
        ));
        assert_eq!(gap.rms(), 0.0);
        // Total length reaches the end of the second tone.
        assert_eq!(s.len(), duration_to_samples(Duration::from_millis(130), SR));
    }

    #[test]
    fn chirp_sweeps_frequency() {
        // Compare zero-crossing density of the first and last quarters.
        let s = chirp(200.0, 2000.0, Duration::from_secs(1), 1.0, SR);
        let crossings = |sig: &[f32]| {
            sig.windows(2)
                .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
                .count()
        };
        let q = s.len() / 4;
        let first = crossings(&s.samples()[..q]);
        let last = crossings(&s.samples()[3 * q..]);
        assert!(last > first * 3, "first {first} last {last}");
    }

    #[test]
    fn oscillator_is_phase_continuous() {
        let mut osc = Oscillator::new(SR);
        let a = osc.render(441.0, 1.0, Duration::from_millis(10));
        let b = osc.render(441.0, 1.0, Duration::from_millis(10));
        // Concatenation must not have a discontinuity: the jump between the
        // last sample of a and first of b should be about one sample step.
        let last = a.samples()[a.len() - 1];
        let first = b.samples()[0];
        let max_step = 2.0 * PI * 441.0 / SR as f64 * 1.5;
        assert!(
            ((first - last) as f64).abs() < max_step,
            "jump {}",
            first - last
        );
    }

    #[test]
    fn zero_duration_tone_is_empty() {
        let t = Tone::new(440.0, Duration::ZERO, 1.0);
        assert!(t.render(SR).is_empty());
    }
}
