//! Goertzel single-bin tone detection.
//!
//! When the MDN controller knows exactly which frequencies to listen for
//! (the common case — each switch owns a published set), evaluating one DFT
//! bin per candidate frequency with the Goertzel recurrence is far cheaper
//! than a full FFT. The ablation bench `claims.rs` compares the two paths.

use crate::signal::Signal;
use std::f64::consts::PI;

/// A Goertzel filter tuned to one target frequency at one sample rate.
///
/// ```
/// use mdn_audio::goertzel::Goertzel;
/// use mdn_audio::synth::Tone;
/// use std::time::Duration;
///
/// let tone = Tone::new(700.0, Duration::from_millis(100), 0.4).render(44_100);
/// let det = Goertzel::new(700.0, 44_100);
/// assert!((det.magnitude_of(&tone) - 0.4).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Goertzel {
    coeff: f64,
    sin_w: f64,
    cos_w: f64,
}

impl Goertzel {
    /// Build a detector for `freq_hz` at `sample_rate`.
    ///
    /// # Panics
    /// Panics if the frequency is not in `(0, sample_rate/2)`.
    pub fn new(freq_hz: f64, sample_rate: u32) -> Self {
        let nyquist = sample_rate as f64 / 2.0;
        assert!(
            freq_hz > 0.0 && freq_hz < nyquist,
            "frequency {freq_hz} Hz outside (0, {nyquist})"
        );
        let w = 2.0 * PI * freq_hz / sample_rate as f64;
        Self {
            coeff: 2.0 * w.cos(),
            sin_w: w.sin(),
            cos_w: w.cos(),
        }
    }

    /// Run the recurrence over `samples`, returning the complex DFT-like
    /// response (magnitude comparable to an unnormalized DFT bin).
    pub fn run(&self, samples: &[f32]) -> (f64, f64) {
        let mut s_prev = 0.0f64;
        let mut s_prev2 = 0.0f64;
        for &x in samples {
            let s = x as f64 + self.coeff * s_prev - s_prev2;
            s_prev2 = s_prev;
            s_prev = s;
        }
        let re = s_prev * self.cos_w - s_prev2;
        let im = s_prev * self.sin_w;
        (re, im)
    }

    /// Magnitude of the target-frequency component, normalized so that a
    /// unit-amplitude sine exactly at the target frequency yields ≈ 1.0
    /// regardless of buffer length.
    pub fn magnitude(&self, samples: &[f32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let (re, im) = self.run(samples);
        re.hypot(im) * 2.0 / samples.len() as f64
    }

    /// Convenience: normalized magnitude over a whole [`Signal`].
    pub fn magnitude_of(&self, signal: &Signal) -> f64 {
        self.magnitude(signal.samples())
    }
}

/// Evaluate the normalized magnitude at each of `freqs_hz` over `signal`.
/// Returns magnitudes in the same order as the input frequencies.
pub fn magnitudes_at(signal: &Signal, freqs_hz: &[f64]) -> Vec<f64> {
    freqs_hz
        .iter()
        .map(|&f| Goertzel::new(f, signal.sample_rate()).magnitude_of(signal))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Tone;
    use std::time::Duration;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, amp: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), amp).render(SR)
    }

    #[test]
    fn detects_matching_tone_with_unit_normalization() {
        let s = tone(1000.0, 100, 0.8);
        let g = Goertzel::new(1000.0, SR);
        let m = g.magnitude_of(&s);
        assert!((m - 0.8).abs() < 0.05, "magnitude {m}");
    }

    #[test]
    fn rejects_distant_tone() {
        let s = tone(1000.0, 100, 0.8);
        let g = Goertzel::new(2000.0, SR);
        assert!(g.magnitude_of(&s) < 0.02);
    }

    #[test]
    fn separates_20hz_spaced_tones_in_long_window() {
        // The paper's 20 Hz spacing claim: with a long enough window the
        // Goertzel bin at f rejects a tone at f+20.
        let s = tone(1000.0, 200, 0.5);
        let on = Goertzel::new(1000.0, SR).magnitude_of(&s);
        let off = Goertzel::new(1020.0, SR).magnitude_of(&s);
        assert!(on > 10.0 * off, "on {on} off {off}");
    }

    #[test]
    fn magnitude_of_silence_is_zero() {
        let s = Signal::silence(Duration::from_millis(50), SR);
        assert_eq!(Goertzel::new(440.0, SR).magnitude_of(&s), 0.0);
    }

    #[test]
    fn empty_buffer_is_zero() {
        assert_eq!(Goertzel::new(440.0, SR).magnitude(&[]), 0.0);
    }

    #[test]
    fn magnitudes_at_preserves_order() {
        let mut s = tone(500.0, 100, 0.5);
        s.mix_at(&tone(700.0, 100, 0.25), 0);
        let mags = magnitudes_at(&s, &[500.0, 600.0, 700.0]);
        assert!(mags[0] > 0.4);
        assert!(mags[1] < 0.05);
        assert!((mags[2] - 0.25).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_frequency_above_nyquist() {
        Goertzel::new(30_000.0, SR);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_zero_frequency() {
        Goertzel::new(0.0, SR);
    }

    #[test]
    fn agrees_with_fft_bin() {
        use crate::fft::FftPlanner;
        // Tone exactly on an FFT bin: both estimates should agree.
        let n = 4096usize;
        let bin = 93usize;
        let freq = bin as f64 * SR as f64 / n as f64;
        let samples: Vec<f32> = (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / SR as f64).sin() as f32)
            .collect();
        let g = Goertzel::new(freq, SR).magnitude(&samples);
        let spec = FftPlanner::new().forward_real(&samples, None);
        let f = spec[bin].norm() * 2.0 / n as f64;
        assert!((g - f).abs() < 1e-6, "goertzel {g} fft {f}");
    }
}
