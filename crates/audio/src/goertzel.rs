//! Goertzel single-bin tone detection.
//!
//! When the MDN controller knows exactly which frequencies to listen for
//! (the common case — each switch owns a published set), evaluating one DFT
//! bin per candidate frequency with the Goertzel recurrence is far cheaper
//! than a full FFT. The ablation bench `claims.rs` compares the two paths.

use crate::signal::Signal;
use std::f64::consts::PI;

/// A Goertzel filter tuned to one target frequency at one sample rate.
///
/// ```
/// use mdn_audio::goertzel::Goertzel;
/// use mdn_audio::synth::Tone;
/// use std::time::Duration;
///
/// let tone = Tone::new(700.0, Duration::from_millis(100), 0.4).render(44_100);
/// let det = Goertzel::new(700.0, 44_100);
/// assert!((det.magnitude_of(&tone) - 0.4).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Goertzel {
    coeff: f64,
    sin_w: f64,
    cos_w: f64,
}

impl Goertzel {
    /// Build a detector for `freq_hz` at `sample_rate`.
    ///
    /// # Panics
    /// Panics if the frequency is not in `(0, sample_rate/2)`.
    pub fn new(freq_hz: f64, sample_rate: u32) -> Self {
        let nyquist = sample_rate as f64 / 2.0;
        assert!(
            freq_hz > 0.0 && freq_hz < nyquist,
            "frequency {freq_hz} Hz outside (0, {nyquist})"
        );
        let w = 2.0 * PI * freq_hz / sample_rate as f64;
        Self {
            coeff: 2.0 * w.cos(),
            sin_w: w.sin(),
            cos_w: w.cos(),
        }
    }

    /// Run the recurrence over `samples`, returning the complex DFT-like
    /// response (magnitude comparable to an unnormalized DFT bin).
    pub fn run(&self, samples: &[f32]) -> (f64, f64) {
        let mut s_prev = 0.0f64;
        let mut s_prev2 = 0.0f64;
        for &x in samples {
            let s = x as f64 + self.coeff * s_prev - s_prev2;
            s_prev2 = s_prev;
            s_prev = s;
        }
        let re = s_prev * self.cos_w - s_prev2;
        let im = s_prev * self.sin_w;
        (re, im)
    }

    /// Magnitude of the target-frequency component, normalized so that a
    /// unit-amplitude sine exactly at the target frequency yields ≈ 1.0
    /// regardless of buffer length.
    pub fn magnitude(&self, samples: &[f32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let (re, im) = self.run(samples);
        re.hypot(im) * 2.0 / samples.len() as f64
    }

    /// Convenience: normalized magnitude over a whole [`Signal`].
    pub fn magnitude_of(&self, signal: &Signal) -> f64 {
        self.magnitude(signal.samples())
    }
}

/// Evaluate the normalized magnitude at each of `freqs_hz` over `signal`.
/// Returns magnitudes in the same order as the input frequencies.
pub fn magnitudes_at(signal: &Signal, freqs_hz: &[f64]) -> Vec<f64> {
    freqs_hz
        .iter()
        .map(|&f| Goertzel::new(f, signal.sample_rate()).magnitude_of(signal))
        .collect()
}

/// Reusable recurrence state for [`GoertzelBank`]; one per worker thread.
///
/// Holding the state outside the bank keeps the bank shareable (`&self`)
/// across threads while the per-call scratch is reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GoertzelState {
    s1: Vec<f64>,
    s2: Vec<f64>,
}

/// A bank of Goertzel filters evaluated in a single pass over the samples.
///
/// Probing C candidate frequencies with independent [`Goertzel`] filters
/// walks the frame C times; the bank keeps all C recurrences live and walks
/// the frame once, which is both cache-friendly (each sample is loaded once)
/// and auto-vectorizable (the inner loop is a pure fused multiply-add over
/// contiguous state arrays). Per candidate, the recurrence and the
/// normalization are *identical* to [`Goertzel`], so the bank's magnitudes
/// are bit-for-bit the same as the per-candidate path.
///
/// ```
/// use mdn_audio::goertzel::{Goertzel, GoertzelBank};
/// use mdn_audio::synth::Tone;
/// use std::time::Duration;
///
/// let tone = Tone::new(700.0, Duration::from_millis(100), 0.4).render(44_100);
/// let bank = GoertzelBank::new(&[500.0, 700.0], 44_100);
/// let mags = bank.magnitudes(tone.samples());
/// assert_eq!(mags[1], Goertzel::new(700.0, 44_100).magnitude(tone.samples()));
/// ```
#[derive(Debug, Clone)]
pub struct GoertzelBank {
    coeff: Vec<f64>,
    sin_w: Vec<f64>,
    cos_w: Vec<f64>,
}

impl GoertzelBank {
    /// Build a bank for `freqs_hz` at `sample_rate`.
    ///
    /// # Panics
    /// Panics if any frequency is not in `(0, sample_rate/2)`.
    pub fn new(freqs_hz: &[f64], sample_rate: u32) -> Self {
        let mut coeff = Vec::with_capacity(freqs_hz.len());
        let mut sin_w = Vec::with_capacity(freqs_hz.len());
        let mut cos_w = Vec::with_capacity(freqs_hz.len());
        for &f in freqs_hz {
            let g = Goertzel::new(f, sample_rate);
            coeff.push(g.coeff);
            sin_w.push(g.sin_w);
            cos_w.push(g.cos_w);
        }
        Self {
            coeff,
            sin_w,
            cos_w,
        }
    }

    /// Number of candidate frequencies in the bank.
    pub fn len(&self) -> usize {
        self.coeff.len()
    }

    /// True if the bank holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.coeff.is_empty()
    }

    /// Normalized magnitudes of all candidates over `samples`, written into
    /// `out` (one per candidate, bank order), reusing `state` so the hot
    /// path allocates nothing.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the bank size.
    pub fn magnitudes_into(&self, samples: &[f32], state: &mut GoertzelState, out: &mut [f64]) {
        let k = self.len();
        assert_eq!(out.len(), k, "output slice must match bank size");
        if samples.is_empty() {
            out.fill(0.0);
            return;
        }
        state.s1.clear();
        state.s1.resize(k, 0.0);
        state.s2.clear();
        state.s2.resize(k, 0.0);
        let (s1, s2) = (&mut state.s1[..], &mut state.s2[..]);
        let coeff = &self.coeff[..];
        // One traversal of the frame; all recurrences advance in lockstep.
        for &x in samples {
            let x = x as f64;
            for c in 0..k {
                let s = x + coeff[c] * s1[c] - s2[c];
                s2[c] = s1[c];
                s1[c] = s;
            }
        }
        // Same expression shape as `Goertzel::magnitude` so the result is
        // bit-identical to the per-candidate path.
        let len = samples.len() as f64;
        for c in 0..k {
            let re = s1[c] * self.cos_w[c] - s2[c];
            let im = s1[c] * self.sin_w[c];
            out[c] = re.hypot(im) * 2.0 / len;
        }
    }

    /// Convenience: allocate fresh state and an output vector.
    pub fn magnitudes(&self, samples: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.magnitudes_into(samples, &mut GoertzelState::default(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Tone;
    use std::time::Duration;

    const SR: u32 = 44_100;

    fn tone(freq: f64, ms: u64, amp: f64) -> Signal {
        Tone::new(freq, Duration::from_millis(ms), amp).render(SR)
    }

    #[test]
    fn detects_matching_tone_with_unit_normalization() {
        let s = tone(1000.0, 100, 0.8);
        let g = Goertzel::new(1000.0, SR);
        let m = g.magnitude_of(&s);
        assert!((m - 0.8).abs() < 0.05, "magnitude {m}");
    }

    #[test]
    fn rejects_distant_tone() {
        let s = tone(1000.0, 100, 0.8);
        let g = Goertzel::new(2000.0, SR);
        assert!(g.magnitude_of(&s) < 0.02);
    }

    #[test]
    fn separates_20hz_spaced_tones_in_long_window() {
        // The paper's 20 Hz spacing claim: with a long enough window the
        // Goertzel bin at f rejects a tone at f+20.
        let s = tone(1000.0, 200, 0.5);
        let on = Goertzel::new(1000.0, SR).magnitude_of(&s);
        let off = Goertzel::new(1020.0, SR).magnitude_of(&s);
        assert!(on > 10.0 * off, "on {on} off {off}");
    }

    #[test]
    fn magnitude_of_silence_is_zero() {
        let s = Signal::silence(Duration::from_millis(50), SR);
        assert_eq!(Goertzel::new(440.0, SR).magnitude_of(&s), 0.0);
    }

    #[test]
    fn empty_buffer_is_zero() {
        assert_eq!(Goertzel::new(440.0, SR).magnitude(&[]), 0.0);
    }

    #[test]
    fn magnitudes_at_preserves_order() {
        let mut s = tone(500.0, 100, 0.5);
        s.mix_at(&tone(700.0, 100, 0.25), 0);
        let mags = magnitudes_at(&s, &[500.0, 600.0, 700.0]);
        assert!(mags[0] > 0.4);
        assert!(mags[1] < 0.05);
        assert!((mags[2] - 0.25).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_frequency_above_nyquist() {
        Goertzel::new(30_000.0, SR);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_zero_frequency() {
        Goertzel::new(0.0, SR);
    }

    #[test]
    fn bank_matches_individual_filters_exactly() {
        // A busy buffer (two tones + DC-ish bias) so the recurrences carry
        // non-trivial state; the bank must equal the per-candidate path to
        // the last bit on every frequency.
        let mut s = tone(500.0, 80, 0.5);
        s.mix_at(&tone(740.0, 80, 0.3), 0);
        let freqs = [440.0, 500.0, 720.0, 740.0, 1000.0];
        let bank = GoertzelBank::new(&freqs, SR);
        assert_eq!(bank.len(), freqs.len());
        assert!(!bank.is_empty());
        let got = bank.magnitudes(s.samples());
        for (c, &f) in freqs.iter().enumerate() {
            assert_eq!(got[c], Goertzel::new(f, SR).magnitude(s.samples()), "{f} Hz");
        }
    }

    #[test]
    fn bank_state_reuse_does_not_leak_between_calls() {
        let loud = tone(700.0, 50, 0.8);
        let quiet = tone(700.0, 50, 0.01);
        let bank = GoertzelBank::new(&[700.0], SR);
        let mut state = GoertzelState::default();
        let mut out = [0.0f64];
        bank.magnitudes_into(loud.samples(), &mut state, &mut out);
        let first = out[0];
        bank.magnitudes_into(quiet.samples(), &mut state, &mut out);
        assert!(out[0] < first / 10.0, "stale state leaked: {}", out[0]);
        bank.magnitudes_into(loud.samples(), &mut state, &mut out);
        assert_eq!(out[0], first, "reused state must reproduce the result");
    }

    #[test]
    fn bank_empty_samples_yield_zeros() {
        let bank = GoertzelBank::new(&[500.0, 700.0], SR);
        assert_eq!(bank.magnitudes(&[]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "match bank size")]
    fn bank_rejects_mismatched_output_slice() {
        let bank = GoertzelBank::new(&[500.0, 700.0], SR);
        let mut out = [0.0f64; 3];
        bank.magnitudes_into(&[0.0; 64], &mut GoertzelState::default(), &mut out);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bank_rejects_frequency_above_nyquist() {
        GoertzelBank::new(&[700.0, 30_000.0], SR);
    }

    #[test]
    fn agrees_with_fft_bin() {
        use crate::fft::FftPlanner;
        // Tone exactly on an FFT bin: both estimates should agree.
        let n = 4096usize;
        let bin = 93usize;
        let freq = bin as f64 * SR as f64 / n as f64;
        let samples: Vec<f32> = (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / SR as f64).sin() as f32)
            .collect();
        let g = Goertzel::new(freq, SR).magnitude(&samples);
        let spec = FftPlanner::new().forward_real(&samples, None);
        let f = spec[bin].norm() * 2.0 / n as f64;
        assert!((g - f).abs() < 1e-6, "goertzel {g} fft {f}");
    }
}
