//! Analysis window functions.
//!
//! The detector and spectrogram pipelines multiply each analysis frame by a
//! window to control spectral leakage. With the paper's 20 Hz tone spacing
//! and ~50 ms frames, leakage control is what makes adjacent switch
//! frequencies separable, so the choice of window is load-bearing.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// No weighting; narrowest main lobe, worst sidelobes (−13 dB).
    Rectangular,
    /// Hann (raised cosine); −31 dB sidelobes, the pipeline default.
    Hann,
    /// Hamming; −41 dB first sidelobe, slower rolloff.
    Hamming,
    /// Blackman; −58 dB sidelobes, widest main lobe.
    Blackman,
}

impl serde::Serialize for WindowKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                WindowKind::Rectangular => "rectangular",
                WindowKind::Hann => "hann",
                WindowKind::Hamming => "hamming",
                WindowKind::Blackman => "blackman",
            }
            .to_string(),
        )
    }
}

impl serde::Deserialize for WindowKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.as_str() {
            Some("rectangular") => Ok(WindowKind::Rectangular),
            Some("hann") => Ok(WindowKind::Hann),
            Some("hamming") => Ok(WindowKind::Hamming),
            Some("blackman") => Ok(WindowKind::Blackman),
            Some(other) => Err(serde::DeError::new(format!(
                "unknown window kind `{other}` (expected rectangular|hann|hamming|blackman)"
            ))),
            None => Err(serde::DeError::expected("a window-kind string", v)),
        }
    }
}

impl WindowKind {
    /// Generate the window coefficients for `n` points (periodic form,
    /// appropriate for STFT analysis).
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = n as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * PI * i as f64 / m;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * x.cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
                    WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients. Dividing a windowed
    /// spectrum's magnitude by this recovers the amplitude of a sinusoid
    /// centred on a bin.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Apply the window in place to a frame of samples.
    pub fn apply(self, frame: &mut [f32]) {
        if self == WindowKind::Rectangular {
            return;
        }
        let coeffs = self.coefficients(frame.len());
        for (s, w) in frame.iter_mut().zip(coeffs) {
            *s = (*s as f64 * w) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let c = WindowKind::Rectangular.coefficients(8);
        assert!(c.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn hann_starts_at_zero_and_peaks_mid() {
        let c = WindowKind::Hann.coefficients(64);
        assert!(c[0].abs() < 1e-12);
        assert!((c[32] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hamming_edges_nonzero() {
        let c = WindowKind::Hamming.coefficients(64);
        assert!((c[0] - 0.08).abs() < 1e-9);
    }

    #[test]
    fn blackman_sums_sane() {
        let c = WindowKind::Blackman.coefficients(128);
        assert!(c.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
        assert!((c[0]).abs() < 1e-9);
    }

    #[test]
    fn coherent_gain_matches_known_values() {
        // Hann coherent gain is 0.5, Hamming 0.54, rectangular 1.0.
        assert!((WindowKind::Hann.coherent_gain(4096) - 0.5).abs() < 1e-3);
        assert!((WindowKind::Hamming.coherent_gain(4096) - 0.54).abs() < 1e-3);
        assert!((WindowKind::Rectangular.coherent_gain(4096) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_scales_frame() {
        let mut frame = vec![1.0f32; 16];
        WindowKind::Hann.apply(&mut frame);
        assert!(frame[0].abs() < 1e-9);
        assert!((frame[8] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
        assert_eq!(WindowKind::Blackman.coherent_gain(0), 0.0);
    }
}
