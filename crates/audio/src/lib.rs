//! # mdn-audio — DSP substrate for Music-Defined Networking
//!
//! Everything the paper's signal pipeline needs, implemented from scratch:
//!
//! * [`signal`] — sample buffers, dBFS/dB SPL level arithmetic;
//! * [`synth`] — pure tones, chirps, mixtures, phase-continuous oscillators;
//! * [`window`] — Hann/Hamming/Blackman analysis windows;
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT with a caching planner
//!   (the code path benchmarked in the paper's Figure 2b);
//! * [`goertzel`] — cheap per-frequency tone detection;
//! * [`spectral`] — amplitude spectra, peak picking, band power, the Fig. 7
//!   amplitude-difference statistic;
//! * [`spectrogram`] — STFT spectrograms and ridge extraction;
//! * [`mel`] — mel scale + mel-scaled spectrograms (the paper's figures);
//! * [`noise`] — white/pink/band noise and the deterministic pop-song
//!   interference track standing in for the paper's background music;
//! * [`resample`] — sample-rate conversion for microphone ADC models;
//! * [`wav`] — mono 16-bit PCM WAV export/import, so every experiment's
//!   soundtrack is playable.
//!
//! ```
//! use mdn_audio::synth::Tone;
//! use mdn_audio::spectral::Spectrum;
//! use std::time::Duration;
//!
//! let tone = Tone::new(700.0, Duration::from_millis(50), 0.5).render(44_100);
//! let spec = Spectrum::of(&tone);
//! let peaks = spec.peaks(0.1, 20.0);
//! assert!((peaks[0].freq_hz - 700.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]

pub mod fft;
pub mod goertzel;
pub mod mel;
pub mod noise;
pub mod resample;
pub mod signal;
pub mod spectral;
pub mod spectrogram;
pub mod synth;
pub mod wav;
pub mod window;

pub use signal::{Signal, Window};
