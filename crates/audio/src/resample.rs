//! Sample-rate conversion.
//!
//! Microphone models capture at their own ADC rate (cheap mics in the
//! paper's testbed ran at lower rates than the analysis pipeline); the
//! resampler bridges the two. Linear interpolation is sufficient here: the
//! tones of interest sit far below Nyquist at every rate we model.

use crate::signal::Signal;

/// Resample `signal` to `target_rate` by linear interpolation.
///
/// Returns the input unchanged (cloned) when the rates already match.
pub fn resample(signal: &Signal, target_rate: u32) -> Signal {
    assert!(target_rate > 0, "target rate must be non-zero");
    let src_rate = signal.sample_rate();
    if src_rate == target_rate {
        return signal.clone();
    }
    let src = signal.samples();
    if src.is_empty() {
        return Signal::empty(target_rate);
    }
    let ratio = src_rate as f64 / target_rate as f64;
    let out_len = ((src.len() as f64) / ratio).floor() as usize;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let pos = i as f64 * ratio;
        let k = pos as usize;
        let frac = pos - k as f64;
        let a = src[k] as f64;
        let b = src[(k + 1).min(src.len() - 1)] as f64;
        out.push((a + (b - a) * frac) as f32);
    }
    Signal::from_samples(out, target_rate)
}

/// Integer decimation by `factor` with a preceding moving-average
/// anti-aliasing filter of the same length.
pub fn decimate(signal: &Signal, factor: usize) -> Signal {
    assert!(factor > 0, "decimation factor must be non-zero");
    if factor == 1 {
        return signal.clone();
    }
    let src = signal.samples();
    let new_rate = (signal.sample_rate() / factor as u32).max(1);
    let mut out = Vec::with_capacity(src.len() / factor);
    let mut i = 0;
    while i + factor <= src.len() {
        let avg: f32 = src[i..i + factor].iter().sum::<f32>() / factor as f32;
        out.push(avg);
        i += factor;
    }
    Signal::from_samples(out, new_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::Spectrum;
    use crate::synth::Tone;
    use std::time::Duration;

    #[test]
    fn same_rate_is_identity() {
        let s = Tone::new(440.0, Duration::from_millis(50), 0.5).render(44_100);
        let r = resample(&s, 44_100);
        assert_eq!(s.samples(), r.samples());
    }

    #[test]
    fn downsample_halves_length() {
        let s = Signal::from_samples(vec![0.0; 1000], 44_100);
        let r = resample(&s, 22_050);
        assert!((r.len() as i64 - 500).abs() <= 1);
        assert_eq!(r.sample_rate(), 22_050);
    }

    #[test]
    fn tone_frequency_preserved_across_resample() {
        let s = Tone::new(1000.0, Duration::from_millis(200), 0.8).render(44_100);
        let r = resample(&s, 16_000);
        let spec = Spectrum::of(&r);
        let peaks = spec.peaks(0.2, 50.0);
        assert!(!peaks.is_empty());
        assert!(
            (peaks[0].freq_hz - 1000.0).abs() < 5.0,
            "freq {}",
            peaks[0].freq_hz
        );
    }

    #[test]
    fn upsample_preserves_tone() {
        let s = Tone::new(500.0, Duration::from_millis(200), 0.5).render(16_000);
        let r = resample(&s, 48_000);
        let spec = Spectrum::of(&r);
        let peaks = spec.peaks(0.15, 50.0);
        assert!((peaks[0].freq_hz - 500.0).abs() < 5.0);
    }

    #[test]
    fn empty_input_empty_output() {
        let s = Signal::empty(44_100);
        assert!(resample(&s, 8_000).is_empty());
        assert!(decimate(&s, 4).is_empty());
    }

    #[test]
    fn decimate_reduces_rate_and_length() {
        let s = Signal::from_samples(vec![1.0; 100], 44_100);
        let d = decimate(&s, 4);
        assert_eq!(d.len(), 25);
        assert_eq!(d.sample_rate(), 11_025);
        // Moving average of a constant is the constant.
        assert!(d.samples().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn decimate_by_one_is_identity() {
        let s = Signal::from_samples(vec![1.0, 2.0, 3.0], 8_000);
        assert_eq!(decimate(&s, 1).samples(), s.samples());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_target_rate_panics() {
        resample(&Signal::empty(44_100), 0);
    }
}
