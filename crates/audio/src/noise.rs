//! Noise and interference generators.
//!
//! Three kinds of interference appear in the paper's experiments:
//!
//! * broadband environment noise (HVAC, many fans — approximated by white
//!   and pink noise at a configured SPL),
//! * structured musical interference — the paper plays Sia's *Cheap Thrills*
//!   as "random background noise" in Figures 4b/4d. We cannot ship the
//!   recording, so [`MusicNoise`] synthesizes a deterministic pop-style
//!   track (chord loop, melody, percussion) with comparable spectral
//!   occupancy, which exercises the identical detection path,
//! * narrowband interferers (a rogue tone), for robustness tests.
//!
//! All generators are seeded and fully deterministic — and **seekable**:
//! sample `i` of a stream is a pure function of `(seed, i)` (white, pink)
//! or of `i`'s position within a fixed absolute block grid (band noise),
//! never of a sequential RNG. That is what lets the windowed render path
//! (`Scene::render_window`) start an ambient bed mid-stream and still
//! produce output byte-identical to a from-zero render: the `*_noise_at`
//! entry points generate `[from, from + n)` of the infinite stream
//! without touching the prefix.

use crate::signal::{duration_to_samples, Signal};
use crate::synth::{Oscillator, Tone};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// splitmix64 finalizer: the stateless hash behind every counter-based
/// generator here.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform in `[-0.5, 0.5)` from 32 hash bits.
#[inline]
fn uniform_half(bits: u64) -> f64 {
    (bits & 0xFFFF_FFFF) as f64 / 4_294_967_296.0 - 0.5
}

/// One sample of the unit-variance-ish white stream for `(seed, index)`:
/// Irwin–Hall(4) — the sum of four uniforms in `[-0.5, 0.5)`, variance
/// `4/12 = 1/3`. Pure function of its arguments, hence seekable.
#[inline]
fn white_sample(seed_hash: u64, index: u64) -> f64 {
    let h1 = splitmix64(index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed_hash);
    let h2 = splitmix64(h1);
    uniform_half(h1) + uniform_half(h1 >> 32) + uniform_half(h2) + uniform_half(h2 >> 32)
}

/// Amplitude scale taking the Irwin–Hall(4) stream (std `1/√3`) to `rms`.
#[inline]
fn white_scale(rms: f64) -> f64 {
    rms / (1.0 / 3f64).sqrt()
}

/// Gaussian-ish white noise (sum of 4 uniforms, Irwin–Hall), deterministic
/// under `seed`, with RMS ≈ `rms`. Samples `[0, duration)` of the stream;
/// see [`white_noise_at`] to start mid-stream.
pub fn white_noise(duration: Duration, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    white_noise_at(
        0,
        duration_to_samples(duration, sample_rate),
        rms,
        sample_rate,
        seed,
    )
}

/// Samples `[from, from + n)` of the seeded white-noise stream — the same
/// values a from-zero [`white_noise`] would produce at those indices.
pub fn white_noise_at(from: u64, n: usize, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    let k = splitmix64(seed);
    let scale = white_scale(rms);
    let samples = (0..n as u64)
        .map(|i| (white_sample(k, from + i) * scale) as f32)
        .collect();
    Signal::from_samples(samples, sample_rate)
}

/// Add samples `[from, from + out.len())` of the seeded white-noise stream
/// into `out`, one `+= (v·scale) as f32` per sample — the allocation-free
/// mixing primitive the windowed ambient/fault paths build on.
pub fn white_noise_add(out: &mut [f32], from: u64, rms: f64, seed: u64) {
    let k = splitmix64(seed);
    let scale = white_scale(rms);
    for (i, o) in out.iter_mut().enumerate() {
        *o += (white_sample(k, from + i as u64) * scale) as f32;
    }
}

/// Octave rows of the Voss–McCartney pink-noise generator. 12 rows keep
/// the `1/f` tilt down to ~10 Hz at 44.1 kHz while the slowest row still
/// refreshes ~10×/s, keeping the short-window RMS close to its analytic
/// expectation.
const PINK_ROWS: usize = 12;

/// Per-row hashed salts so rows draw independent streams.
#[inline]
fn pink_salts(seed: u64) -> [u64; PINK_ROWS] {
    let mut salts = [0u64; PINK_ROWS];
    for (r, s) in salts.iter_mut().enumerate() {
        *s = splitmix64(seed ^ (r as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    }
    salts
}

/// One sample of the unscaled pink stream: row `r` holds a uniform in
/// `[-1, 1)` that refreshes every `2^r` samples (rows staggered by half a
/// period so they don't all step at once); the sample is the row sum.
/// Each row value is a hash of its block index — a pure function of
/// `(seed, i)`, hence seekable. Row variance is `1/3`, so the sum's RMS
/// is exactly `√(PINK_ROWS/3)` in expectation.
#[inline]
fn pink_sample(salts: &[u64; PINK_ROWS], index: u64) -> f64 {
    let mut sum = 0.0;
    for (r, &salt) in salts.iter().enumerate() {
        let block = (index + ((1u64 << r) >> 1)) >> r;
        sum += uniform_half(splitmix64(block ^ salt)) * 2.0;
    }
    sum
}

/// Pink (1/f) noise via a hashed Voss–McCartney scheme with
/// [`PINK_ROWS`] octave rows, calibrated analytically to RMS ≈ `rms`.
/// Samples `[0, duration)` of the stream; see [`pink_noise_at`].
pub fn pink_noise(duration: Duration, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    pink_noise_at(
        0,
        duration_to_samples(duration, sample_rate),
        rms,
        sample_rate,
        seed,
    )
}

/// Samples `[from, from + n)` of the seeded pink-noise stream.
pub fn pink_noise_at(from: u64, n: usize, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    let salts = pink_salts(seed);
    let scale = rms / (PINK_ROWS as f64 / 3.0).sqrt();
    let samples = (0..n as u64)
        .map(|i| (pink_sample(&salts, from + i) * scale) as f32)
        .collect();
    Signal::from_samples(samples, sample_rate)
}

/// Add samples `[from, from + out.len())` of the seeded pink-noise stream
/// into `out`.
pub fn pink_noise_add(out: &mut [f32], from: u64, rms: f64, seed: u64) {
    let salts = pink_salts(seed);
    let scale = rms / (PINK_ROWS as f64 / 3.0).sqrt();
    for (i, o) in out.iter_mut().enumerate() {
        *o += (pink_sample(&salts, from + i as u64) * scale) as f32;
    }
}

/// `sin(x)/x`, continuous at zero.
#[inline]
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        x.sin() / x
    }
}

/// One-sided power spectral density (power per Hz) of the white stream at
/// RMS `rms`: flat across `[0, sample_rate/2]`.
pub fn white_noise_psd(rms: f64, sample_rate: u32) -> f64 {
    rms * rms / (sample_rate as f64 / 2.0)
}

/// One-sided power spectral density of the pink stream at RMS `rms`,
/// evaluated at `freq_hz`. Exact for the generator actually shipped: each
/// Voss–McCartney row is a zero-order hold over `2^r` samples, so its
/// spectrum is the hold's `sinc²`, and independent rows add in power. The
/// densities integrate back to `rms²` over the Nyquist band.
pub fn pink_noise_psd(rms: f64, freq_hz: f64, sample_rate: u32) -> f64 {
    let sr = sample_rate as f64;
    let row_var = rms * rms / PINK_ROWS as f64; // scale² · (1/3) per row
    let mut psd = 0.0;
    for r in 0..PINK_ROWS {
        let hold = (1u64 << r) as f64;
        let s = sinc(std::f64::consts::PI * freq_hz * hold / sr);
        psd += 2.0 * row_var * (hold / sr) * s * s;
    }
    psd
}

/// One-sided power spectral density of the band-noise stream at RMS
/// `rms` over `[lo_hz, hi_hz]`, evaluated at `freq_hz` — the white
/// input's flat density shaped by the cascaded band section's actual
/// `|H|⁴` response, normalized by the same analytic gain the generator
/// calibrates with. Integrates back to `rms²` over the Nyquist band.
pub fn band_noise_psd(rms: f64, lo_hz: f64, hi_hz: f64, freq_hz: f64, sample_rate: u32) -> f64 {
    assert!(hi_hz > lo_hz && lo_hz > 0.0, "bad band {lo_hz}..{hi_hz}");
    let a_hi = one_pole_alpha(hi_hz, sample_rate);
    let a_lo = one_pole_alpha(lo_hz, sample_rate);
    let g = band_gain_rms(a_hi, a_lo); // √(mean |H_hi − H_lo|⁴)
    let w = std::f64::consts::TAU * freq_hz / sample_rate as f64;
    let (hr, hi) = one_pole_response(a_hi, w);
    let (lr, li) = one_pole_response(a_lo, w);
    let mag_sq = (hr - lr) * (hr - lr) + (hi - li) * (hi - li);
    rms * rms * (mag_sq * mag_sq) / (g * g) / (sample_rate as f64 / 2.0)
}

/// Band-noise block grid: the IIR filter state is re-derived per absolute
/// block of this many samples, so any block can be generated alone.
const BAND_BLOCK: u64 = 1 << 14;

/// Warm-up run-in before each block, from zero state. The slowest pole in
/// any profile (100 Hz low cutoff) decays by `e^{-2π·100·4096/44100}` ≈
/// 10⁻²⁶ over this run-in, so the truncated pre-history is far below f32
/// resolution — while staying an absolute function of the block index,
/// which is what makes the stream seekable *and* byte-stable across
/// arbitrary windows.
const BAND_WARMUP: u64 = 1 << 12;

/// Frequency response of the one-pole lowpass with coefficient `a` at
/// normalized angular frequency `w`:
/// `H(e^{jw}) = a / ((1 − (1−a)cos w) + j(1−a)sin w)`.
#[inline]
fn one_pole_response(a: f64, w: f64) -> (f64, f64) {
    let re_d = 1.0 - (1.0 - a) * w.cos();
    let im_d = (1.0 - a) * w.sin();
    let den = re_d * re_d + im_d * im_d;
    (a * re_d / den, -a * im_d / den)
}

/// One-pole lowpass coefficient for cutoff `fc`.
#[inline]
fn one_pole_alpha(fc: f64, sample_rate: u32) -> f64 {
    let dt = 1.0 / sample_rate as f64;
    let rc = 1.0 / (2.0 * std::f64::consts::PI * fc);
    dt / (rc + dt)
}

/// Analytic RMS gain of the cascaded band section pair for unit-variance
/// white input: the cascade is `H(z) = (H_hi(z) − H_lo(z))²` with
/// `H_c(z) = a_c / (1 − (1−a_c)·z⁻¹)`, so the output power is the white
/// input power times the mean of `|H_hi − H_lo|⁴` over frequency.
/// Evaluated by midpoint quadrature — deterministic, duration-free, and
/// the reason the generator no longer needs a measured-RMS normalization
/// pass (which would have made the stream un-seekable).
fn band_gain_rms(a_hi: f64, a_lo: f64) -> f64 {
    const M: usize = 4096;
    let mut acc = 0.0;
    for m in 0..M {
        let w = std::f64::consts::PI * (m as f64 + 0.5) / M as f64;
        let (hr, hi) = one_pole_response(a_hi, w);
        let (lr, li) = one_pole_response(a_lo, w);
        let (dr, di) = (hr - lr, hi - li);
        let mag_sq = dr * dr + di * di;
        acc += mag_sq * mag_sq; // |H_hi − H_lo|⁴ = |cascade|²
    }
    (acc / M as f64).sqrt()
}

/// Run the band filter over absolute indices, adding scaled output for
/// indices within `[from, from + out.len())` into `out`.
fn band_noise_run(out: &mut [f32], from: u64, a_hi: f64, a_lo: f64, scale: f64, seed_hash: u64) {
    if out.is_empty() {
        return;
    }
    let end = from + out.len() as u64;
    let white = white_scale(1.0);
    let (first_block, last_block) = (from / BAND_BLOCK, (end - 1) / BAND_BLOCK);
    for block in first_block..=last_block {
        // Warm-up may reach below index 0 for block 0: the conceptual
        // stream is indexed in two's complement, so negative indices hash
        // deterministically too.
        let sim_start = (block * BAND_BLOCK) as i64 - BAND_WARMUP as i64;
        let sim_end = ((block + 1) * BAND_BLOCK).min(end) as i64;
        // Only this block's own samples are written; a block's warm-up may
        // overlap the previous block's range, which the previous block owns.
        let write_from = ((block * BAND_BLOCK) as i64).max(from as i64);
        let mut state = [0.0f64; 4]; // [hi1, lo1, hi2, lo2]
        for i in sim_start..sim_end {
            let x = white_sample(seed_hash, i as u64) * white;
            state[0] += a_hi * (x - state[0]);
            state[1] += a_lo * (x - state[1]);
            let band1 = state[0] - state[1];
            state[2] += a_hi * (band1 - state[2]);
            state[3] += a_lo * (band1 - state[3]);
            if i >= write_from {
                out[(i - from as i64) as usize] += ((state[2] - state[3]) * scale) as f32;
            }
        }
    }
}

/// Band-limited noise: white noise passed through a crude bandpass
/// (a cascaded difference of one-pole lowpasses), calibrated analytically
/// to RMS ≈ `rms`. Samples `[0, duration)` of the stream; see
/// [`band_noise_at`].
pub fn band_noise(
    duration: Duration,
    lo_hz: f64,
    hi_hz: f64,
    rms: f64,
    sample_rate: u32,
    seed: u64,
) -> Signal {
    band_noise_at(
        0,
        duration_to_samples(duration, sample_rate),
        lo_hz,
        hi_hz,
        rms,
        sample_rate,
        seed,
    )
}

/// Samples `[from, from + n)` of the seeded band-noise stream. The filter
/// state is reconstructed on an absolute block grid ([`BAND_BLOCK`] with
/// [`BAND_WARMUP`] run-in), so the values are byte-identical no matter
/// which window of the stream is requested.
pub fn band_noise_at(
    from: u64,
    n: usize,
    lo_hz: f64,
    hi_hz: f64,
    rms: f64,
    sample_rate: u32,
    seed: u64,
) -> Signal {
    let mut out = Signal::from_samples(vec![0.0; n], sample_rate);
    band_noise_add(
        out.samples_mut(),
        from,
        lo_hz,
        hi_hz,
        rms,
        sample_rate,
        seed,
    );
    out
}

/// Add samples `[from, from + out.len())` of the seeded band-noise stream
/// into `out`.
pub fn band_noise_add(
    out: &mut [f32],
    from: u64,
    lo_hz: f64,
    hi_hz: f64,
    rms: f64,
    sample_rate: u32,
    seed: u64,
) {
    assert!(hi_hz > lo_hz && lo_hz > 0.0, "bad band {lo_hz}..{hi_hz}");
    let a_hi = one_pole_alpha(hi_hz, sample_rate);
    let a_lo = one_pole_alpha(lo_hz, sample_rate);
    let scale = rms / band_gain_rms(a_hi, a_lo).max(1e-12);
    band_noise_run(out, from, a_hi, a_lo, scale, splitmix64(seed));
}

/// Equal-tempered pitch: MIDI note number to Hz (A4 = 69 = 440 Hz).
#[inline]
pub fn midi_to_hz(note: i32) -> f64 {
    440.0 * 2f64.powf((note - 69) as f64 / 12.0)
}

/// A deterministic pop-song synthesizer standing in for the paper's
/// *Cheap Thrills* background track.
///
/// Structure: a four-chord loop (vi–IV–I–V in C major) of sustained triads,
/// an eighth-note melody walking the pentatonic scale, a bass line on the
/// roots, and noise-burst percussion on each beat. The result occupies
/// roughly 80 Hz – 6 kHz — the same band as the signalling tones — which is
/// what makes it a meaningful interference source.
#[derive(Debug, Clone)]
pub struct MusicNoise {
    /// Beats per minute (the real track is ≈ 90 BPM).
    pub bpm: f64,
    /// Linear output amplitude of the mix.
    pub level: f64,
    /// Seed for the melody walk and percussion jitter.
    pub seed: u64,
}

impl Default for MusicNoise {
    fn default() -> Self {
        Self {
            bpm: 90.0,
            level: 0.25,
            seed: 0xC4EA9,
        }
    }
}

impl MusicNoise {
    /// Render `duration` of the track at `sample_rate`.
    pub fn render(&self, duration: Duration, sample_rate: u32) -> Signal {
        let n = duration_to_samples(duration, sample_rate);
        let mut out = Signal::from_samples(vec![0.0; n], sample_rate);
        if n == 0 {
            return out;
        }
        let beat = Duration::from_secs_f64(60.0 / self.bpm);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // vi–IV–I–V in C major: Am, F, C, G — as MIDI triads.
        let chords: [[i32; 3]; 4] = [[57, 60, 64], [53, 57, 60], [48, 52, 55], [55, 59, 62]];
        let pentatonic: [i32; 6] = [72, 74, 76, 79, 81, 84]; // C pent. up top
        let total = duration.as_secs_f64();
        let beat_s = beat.as_secs_f64();

        // Chords: one bar (4 beats) each, looped.
        let mut t = 0.0;
        let mut bar = 0usize;
        while t < total {
            let chord = chords[bar % chords.len()];
            let bar_len = Duration::from_secs_f64((4.0 * beat_s).min(total - t));
            for &note in &chord {
                let tone = Tone::new(midi_to_hz(note), bar_len, self.level * 0.22);
                out.mix_at_time(&tone.render(sample_rate), Duration::from_secs_f64(t));
                // Bass an octave below the root.
                if note == chord[0] {
                    let bass = Tone::new(midi_to_hz(note - 12), bar_len, self.level * 0.3);
                    out.mix_at_time(&bass.render(sample_rate), Duration::from_secs_f64(t));
                }
            }
            t += 4.0 * beat_s;
            bar += 1;
        }

        // Melody: eighth notes, random pentatonic walk.
        let eighth = beat_s / 2.0;
        let mut idx = 2usize;
        let mut t = 0.0;
        let mut osc = Oscillator::new(sample_rate);
        while t + eighth <= total {
            let step: i64 = rng.gen_range(-2..=2);
            idx = (idx as i64 + step).clamp(0, pentatonic.len() as i64 - 1) as usize;
            let note = pentatonic[idx];
            let seg = osc.render(
                midi_to_hz(note),
                self.level * 0.35,
                Duration::from_secs_f64(eighth * 0.9),
            );
            out.mix_at_time(&seg, Duration::from_secs_f64(t));
            t += eighth;
        }

        // Percussion: a 25 ms noise burst on each beat.
        let mut t = 0.0;
        let mut hit = 0u64;
        while t < total {
            let burst = white_noise(
                Duration::from_millis(25),
                self.level * 0.4,
                sample_rate,
                self.seed ^ hit,
            );
            out.mix_at_time(&burst, Duration::from_secs_f64(t));
            t += beat_s;
            hit += 1;
        }

        out.clip();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::Spectrum;

    const SR: u32 = 44_100;

    #[test]
    fn white_noise_rms_calibrated() {
        let s = white_noise(Duration::from_secs(1), 0.1, SR, 7);
        assert!((s.rms() - 0.1).abs() < 0.01, "rms {}", s.rms());
    }

    #[test]
    fn white_noise_deterministic_under_seed() {
        let a = white_noise(Duration::from_millis(100), 0.1, SR, 42);
        let b = white_noise(Duration::from_millis(100), 0.1, SR, 42);
        assert_eq!(a.samples(), b.samples());
        let c = white_noise(Duration::from_millis(100), 0.1, SR, 43);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn pink_noise_rms_calibrated() {
        let s = pink_noise(Duration::from_secs(1), 0.1, SR, 7);
        assert!((s.rms() - 0.1).abs() < 0.02, "rms {}", s.rms());
    }

    #[test]
    fn pink_noise_tilts_toward_low_frequencies() {
        let s = pink_noise(Duration::from_secs(2), 0.1, SR, 3);
        let spec = Spectrum::of(&s);
        let low = spec.band_power(50.0, 500.0);
        let high = spec.band_power(5000.0, 5450.0); // equal-width band
        assert!(low > 3.0 * high, "low {low} high {high}");
    }

    #[test]
    fn band_noise_concentrates_in_band() {
        let s = band_noise(Duration::from_secs(2), 800.0, 1600.0, 0.1, SR, 9);
        let spec = Spectrum::of(&s);
        let inside = spec.band_power(800.0, 1600.0);
        let outside = spec.band_power(5000.0, 5800.0);
        assert!(inside > 10.0 * outside, "in {inside} out {outside}");
    }

    #[test]
    fn midi_anchors() {
        assert!((midi_to_hz(69) - 440.0).abs() < 1e-9);
        assert!((midi_to_hz(60) - 261.6256).abs() < 0.01);
        assert!((midi_to_hz(81) - 880.0).abs() < 1e-6);
    }

    #[test]
    fn music_noise_is_deterministic() {
        let m = MusicNoise::default();
        let a = m.render(Duration::from_millis(500), SR);
        let b = m.render(Duration::from_millis(500), SR);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn music_noise_occupies_wide_band() {
        let s = MusicNoise::default().render(Duration::from_secs(3), SR);
        let spec = Spectrum::of(&s);
        // Energy in bass, mid and treble regions — a broadband interferer.
        assert!(spec.band_power(80.0, 300.0) > 1e-4);
        assert!(spec.band_power(300.0, 1200.0) > 1e-4);
        assert!(spec.band_power(1200.0, 6000.0) > 1e-6);
    }

    #[test]
    fn music_noise_level_scales_output() {
        let quiet = MusicNoise {
            level: 0.05,
            ..Default::default()
        }
        .render(Duration::from_secs(1), SR);
        let loud = MusicNoise {
            level: 0.4,
            ..Default::default()
        }
        .render(Duration::from_secs(1), SR);
        assert!(loud.rms() > 3.0 * quiet.rms());
    }

    #[test]
    fn zero_duration_renders_empty() {
        assert!(MusicNoise::default().render(Duration::ZERO, SR).is_empty());
        assert!(white_noise(Duration::ZERO, 0.1, SR, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad band")]
    fn band_noise_rejects_inverted_band() {
        band_noise(Duration::from_millis(10), 2000.0, 1000.0, 0.1, SR, 1);
    }

    /// Midpoint-integrate a PSD over `[0, sr/2]` in 1 Hz steps.
    fn integrate_psd(psd: impl Fn(f64) -> f64) -> f64 {
        (0..SR / 2).map(|f| psd(f as f64 + 0.5)).sum()
    }

    #[test]
    fn psds_integrate_to_total_power() {
        let total = integrate_psd(|f| white_noise_psd(0.1, SR).max(f * 0.0));
        assert!((total - 0.01).abs() < 1e-4, "white {total}");
        let total = integrate_psd(|f| pink_noise_psd(0.1, f, SR));
        assert!((total - 0.01).abs() < 1e-3, "pink {total}");
        let total = integrate_psd(|f| band_noise_psd(0.1, 800.0, 1600.0, f, SR));
        assert!((total - 0.01).abs() < 1e-3, "band {total}");
    }

    #[test]
    fn pink_psd_matches_measured_band_ratio() {
        // Absolute `band_power` carries the spectrum's amplitude-vs-power
        // normalization convention; the ratio between two bands cancels it.
        let s = pink_noise(Duration::from_secs(4), 0.1, SR, 11);
        let spec = Spectrum::of(&s);
        let band = |lo: u32, hi: u32| -> f64 {
            (lo..hi)
                .map(|f| pink_noise_psd(0.1, f as f64 + 0.5, SR))
                .sum()
        };
        let modeled = band(100, 400) / band(1000, 4000);
        let measured = spec.band_power(100.0, 400.0) / spec.band_power(1000.0, 4000.0);
        assert!(
            measured > 0.5 * modeled && measured < 2.0 * modeled,
            "measured ratio {measured:.3} vs modeled {modeled:.3}"
        );
    }

    #[test]
    fn band_psd_concentrates_power_in_band() {
        let in_band = band_noise_psd(0.1, 800.0, 1600.0, 1200.0, SR);
        let out_band = band_noise_psd(0.1, 800.0, 1600.0, 8000.0, SR);
        assert!(in_band > 20.0 * out_band, "in {in_band} out {out_band}");
        // In-band density must exceed the power-spread-uniformly estimate:
        // the response is peaked, not flat.
        assert!(in_band > 0.01 / 20_000.0);
    }

    #[test]
    fn white_noise_is_seekable() {
        let full = white_noise(Duration::from_millis(500), 0.1, SR, 99);
        let mid = white_noise_at(5_000, 2_000, 0.1, SR, 99);
        assert_eq!(mid.samples(), &full.samples()[5_000..7_000]);
    }

    #[test]
    fn pink_noise_is_seekable() {
        let full = pink_noise(Duration::from_millis(500), 0.1, SR, 99);
        let mid = pink_noise_at(5_000, 2_000, 0.1, SR, 99);
        assert_eq!(mid.samples(), &full.samples()[5_000..7_000]);
    }

    #[test]
    fn band_noise_is_seekable_across_block_boundaries() {
        // [15_000, 19_000) straddles the 16_384-sample block boundary, so
        // this checks both the intra-block path and the grid alignment.
        let full = band_noise(Duration::from_millis(500), 800.0, 1600.0, 0.1, SR, 99);
        let mid = band_noise_at(15_000, 4_000, 800.0, 1600.0, 0.1, SR, 99);
        assert_eq!(mid.samples(), &full.samples()[15_000..19_000]);
    }

    #[test]
    fn band_noise_analytic_rms_is_calibrated() {
        let s = band_noise(Duration::from_secs(2), 200.0, 2000.0, 0.1, SR, 5);
        assert!((s.rms() - 0.1).abs() < 0.02, "rms {}", s.rms());
    }

    #[test]
    fn noise_add_variants_match_at_variants() {
        let n = 3_000;
        let mut acc = vec![0.0f32; n];
        white_noise_add(&mut acc, 1_234, 0.1, 7);
        let alone = white_noise_at(1_234, n, 0.1, SR, 7);
        assert_eq!(&acc, alone.samples());

        let mut acc = vec![0.0f32; n];
        pink_noise_add(&mut acc, 1_234, 0.1, 7);
        let alone = pink_noise_at(1_234, n, 0.1, SR, 7);
        assert_eq!(&acc, alone.samples());

        let mut acc = vec![0.0f32; n];
        band_noise_add(&mut acc, 1_234, 500.0, 1500.0, 0.1, SR, 7);
        let alone = band_noise_at(1_234, n, 500.0, 1500.0, 0.1, SR, 7);
        assert_eq!(&acc, alone.samples());
    }
}
