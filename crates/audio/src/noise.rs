//! Noise and interference generators.
//!
//! Three kinds of interference appear in the paper's experiments:
//!
//! * broadband environment noise (HVAC, many fans — approximated by white
//!   and pink noise at a configured SPL),
//! * structured musical interference — the paper plays Sia's *Cheap Thrills*
//!   as "random background noise" in Figures 4b/4d. We cannot ship the
//!   recording, so [`MusicNoise`] synthesizes a deterministic pop-style
//!   track (chord loop, melody, percussion) with comparable spectral
//!   occupancy, which exercises the identical detection path,
//! * narrowband interferers (a rogue tone), for robustness tests.
//!
//! All generators are seeded and fully deterministic.

use crate::signal::{duration_to_samples, Signal};
use crate::synth::{Oscillator, Tone};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Gaussian-ish white noise (sum of 4 uniforms, Irwin–Hall), deterministic
/// under `seed`, with RMS ≈ `rms`.
pub fn white_noise(duration: Duration, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    let n = duration_to_samples(duration, sample_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    // Irwin-Hall(4) centered: variance 4/12 = 1/3, std = 0.577.
    let scale = rms / (1.0 / 3f64).sqrt();
    let samples = (0..n)
        .map(|_| {
            let s: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum();
            (s * scale) as f32
        })
        .collect();
    Signal::from_samples(samples, sample_rate)
}

/// Pink (1/f) noise via the Voss–McCartney algorithm with 16 octave rows,
/// normalized to RMS ≈ `rms`.
pub fn pink_noise(duration: Duration, rms: f64, sample_rate: u32, seed: u64) -> Signal {
    const ROWS: usize = 16;
    let n = duration_to_samples(duration, sample_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = [0.0f64; ROWS];
    for r in rows.iter_mut() {
        *r = rng.gen_range(-1.0..1.0);
    }
    let mut raw = Vec::with_capacity(n);
    for i in 0..n {
        // Update the row selected by the number of trailing ones of i
        // (Voss-McCartney update schedule).
        let row = (i.trailing_zeros() as usize).min(ROWS - 1);
        rows[row] = rng.gen_range(-1.0..1.0);
        raw.push(rows.iter().sum::<f64>());
    }
    let raw_rms = (raw.iter().map(|v| v * v).sum::<f64>() / raw.len().max(1) as f64)
        .sqrt()
        .max(1e-12);
    let scale = rms / raw_rms;
    Signal::from_samples(
        raw.into_iter().map(|v| (v * scale) as f32).collect(),
        sample_rate,
    )
}

/// Band-limited noise: white noise passed through a crude bandpass
/// (implemented as a difference of one-pole lowpasses), normalized to
/// RMS ≈ `rms`.
pub fn band_noise(
    duration: Duration,
    lo_hz: f64,
    hi_hz: f64,
    rms: f64,
    sample_rate: u32,
    seed: u64,
) -> Signal {
    assert!(hi_hz > lo_hz && lo_hz > 0.0, "bad band {lo_hz}..{hi_hz}");
    let white = white_noise(duration, 1.0, sample_rate, seed);
    let dt = 1.0 / sample_rate as f64;
    let alpha = |fc: f64| {
        let rc = 1.0 / (2.0 * std::f64::consts::PI * fc);
        dt / (rc + dt)
    };
    let (a_hi, a_lo) = (alpha(hi_hz), alpha(lo_hz));
    // Two cascaded band sections for a usably steep rolloff.
    let mut state = [0.0f64; 4]; // [hi1, lo1, hi2, lo2]
    let mut out = Vec::with_capacity(white.len());
    for &x in white.samples() {
        state[0] += a_hi * (x as f64 - state[0]); // lowpass at hi cutoff
        state[1] += a_lo * (x as f64 - state[1]); // lowpass at lo cutoff
        let band1 = state[0] - state[1];
        state[2] += a_hi * (band1 - state[2]);
        state[3] += a_lo * (band1 - state[3]);
        out.push(state[2] - state[3]);
    }
    let raw_rms = (out.iter().map(|v| v * v).sum::<f64>() / out.len().max(1) as f64)
        .sqrt()
        .max(1e-12);
    let scale = rms / raw_rms;
    Signal::from_samples(
        out.into_iter().map(|v| (v * scale) as f32).collect(),
        sample_rate,
    )
}

/// Equal-tempered pitch: MIDI note number to Hz (A4 = 69 = 440 Hz).
#[inline]
pub fn midi_to_hz(note: i32) -> f64 {
    440.0 * 2f64.powf((note - 69) as f64 / 12.0)
}

/// A deterministic pop-song synthesizer standing in for the paper's
/// *Cheap Thrills* background track.
///
/// Structure: a four-chord loop (vi–IV–I–V in C major) of sustained triads,
/// an eighth-note melody walking the pentatonic scale, a bass line on the
/// roots, and noise-burst percussion on each beat. The result occupies
/// roughly 80 Hz – 6 kHz — the same band as the signalling tones — which is
/// what makes it a meaningful interference source.
#[derive(Debug, Clone)]
pub struct MusicNoise {
    /// Beats per minute (the real track is ≈ 90 BPM).
    pub bpm: f64,
    /// Linear output amplitude of the mix.
    pub level: f64,
    /// Seed for the melody walk and percussion jitter.
    pub seed: u64,
}

impl Default for MusicNoise {
    fn default() -> Self {
        Self {
            bpm: 90.0,
            level: 0.25,
            seed: 0xC4EA9,
        }
    }
}

impl MusicNoise {
    /// Render `duration` of the track at `sample_rate`.
    pub fn render(&self, duration: Duration, sample_rate: u32) -> Signal {
        let n = duration_to_samples(duration, sample_rate);
        let mut out = Signal::from_samples(vec![0.0; n], sample_rate);
        if n == 0 {
            return out;
        }
        let beat = Duration::from_secs_f64(60.0 / self.bpm);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // vi–IV–I–V in C major: Am, F, C, G — as MIDI triads.
        let chords: [[i32; 3]; 4] = [[57, 60, 64], [53, 57, 60], [48, 52, 55], [55, 59, 62]];
        let pentatonic: [i32; 6] = [72, 74, 76, 79, 81, 84]; // C pent. up top
        let total = duration.as_secs_f64();
        let beat_s = beat.as_secs_f64();

        // Chords: one bar (4 beats) each, looped.
        let mut t = 0.0;
        let mut bar = 0usize;
        while t < total {
            let chord = chords[bar % chords.len()];
            let bar_len = Duration::from_secs_f64((4.0 * beat_s).min(total - t));
            for &note in &chord {
                let tone = Tone::new(midi_to_hz(note), bar_len, self.level * 0.22);
                out.mix_at_time(&tone.render(sample_rate), Duration::from_secs_f64(t));
                // Bass an octave below the root.
                if note == chord[0] {
                    let bass = Tone::new(midi_to_hz(note - 12), bar_len, self.level * 0.3);
                    out.mix_at_time(&bass.render(sample_rate), Duration::from_secs_f64(t));
                }
            }
            t += 4.0 * beat_s;
            bar += 1;
        }

        // Melody: eighth notes, random pentatonic walk.
        let eighth = beat_s / 2.0;
        let mut idx = 2usize;
        let mut t = 0.0;
        let mut osc = Oscillator::new(sample_rate);
        while t + eighth <= total {
            let step: i64 = rng.gen_range(-2..=2);
            idx = (idx as i64 + step).clamp(0, pentatonic.len() as i64 - 1) as usize;
            let note = pentatonic[idx];
            let seg = osc.render(
                midi_to_hz(note),
                self.level * 0.35,
                Duration::from_secs_f64(eighth * 0.9),
            );
            out.mix_at_time(&seg, Duration::from_secs_f64(t));
            t += eighth;
        }

        // Percussion: a 25 ms noise burst on each beat.
        let mut t = 0.0;
        let mut hit = 0u64;
        while t < total {
            let burst = white_noise(
                Duration::from_millis(25),
                self.level * 0.4,
                sample_rate,
                self.seed ^ hit,
            );
            out.mix_at_time(&burst, Duration::from_secs_f64(t));
            t += beat_s;
            hit += 1;
        }

        out.clip();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::Spectrum;

    const SR: u32 = 44_100;

    #[test]
    fn white_noise_rms_calibrated() {
        let s = white_noise(Duration::from_secs(1), 0.1, SR, 7);
        assert!((s.rms() - 0.1).abs() < 0.01, "rms {}", s.rms());
    }

    #[test]
    fn white_noise_deterministic_under_seed() {
        let a = white_noise(Duration::from_millis(100), 0.1, SR, 42);
        let b = white_noise(Duration::from_millis(100), 0.1, SR, 42);
        assert_eq!(a.samples(), b.samples());
        let c = white_noise(Duration::from_millis(100), 0.1, SR, 43);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn pink_noise_rms_calibrated() {
        let s = pink_noise(Duration::from_secs(1), 0.1, SR, 7);
        assert!((s.rms() - 0.1).abs() < 0.02, "rms {}", s.rms());
    }

    #[test]
    fn pink_noise_tilts_toward_low_frequencies() {
        let s = pink_noise(Duration::from_secs(2), 0.1, SR, 3);
        let spec = Spectrum::of(&s);
        let low = spec.band_power(50.0, 500.0);
        let high = spec.band_power(5000.0, 5450.0); // equal-width band
        assert!(low > 3.0 * high, "low {low} high {high}");
    }

    #[test]
    fn band_noise_concentrates_in_band() {
        let s = band_noise(Duration::from_secs(2), 800.0, 1600.0, 0.1, SR, 9);
        let spec = Spectrum::of(&s);
        let inside = spec.band_power(800.0, 1600.0);
        let outside = spec.band_power(5000.0, 5800.0);
        assert!(inside > 10.0 * outside, "in {inside} out {outside}");
    }

    #[test]
    fn midi_anchors() {
        assert!((midi_to_hz(69) - 440.0).abs() < 1e-9);
        assert!((midi_to_hz(60) - 261.6256).abs() < 0.01);
        assert!((midi_to_hz(81) - 880.0).abs() < 1e-6);
    }

    #[test]
    fn music_noise_is_deterministic() {
        let m = MusicNoise::default();
        let a = m.render(Duration::from_millis(500), SR);
        let b = m.render(Duration::from_millis(500), SR);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn music_noise_occupies_wide_band() {
        let s = MusicNoise::default().render(Duration::from_secs(3), SR);
        let spec = Spectrum::of(&s);
        // Energy in bass, mid and treble regions — a broadband interferer.
        assert!(spec.band_power(80.0, 300.0) > 1e-4);
        assert!(spec.band_power(300.0, 1200.0) > 1e-4);
        assert!(spec.band_power(1200.0, 6000.0) > 1e-6);
    }

    #[test]
    fn music_noise_level_scales_output() {
        let quiet = MusicNoise {
            level: 0.05,
            ..Default::default()
        }
        .render(Duration::from_secs(1), SR);
        let loud = MusicNoise {
            level: 0.4,
            ..Default::default()
        }
        .render(Duration::from_secs(1), SR);
        assert!(loud.rms() > 3.0 * quiet.rms());
    }

    #[test]
    fn zero_duration_renders_empty() {
        assert!(MusicNoise::default().render(Duration::ZERO, SR).is_empty());
        assert!(white_noise(Duration::ZERO, 0.1, SR, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad band")]
    fn band_noise_rejects_inverted_band() {
        band_noise(Duration::from_millis(10), 2000.0, 1000.0, 0.1, SR, 1);
    }
}
