//! Minimal WAV (RIFF) export/import — mono, 16-bit PCM.
//!
//! The whole point of Music-Defined Networking is that you can *hear* it.
//! [`write_wav`] turns any [`Signal`] — a port-scan soundtrack, a queue-tone
//! sequence, a failing fan in a datacenter — into a playable file, and
//! [`read_wav`] loads one back (round-trip tested). Implemented from
//! scratch: a RIFF header plus little-endian PCM samples, no dependencies.

use crate::signal::Signal;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Errors from WAV I/O.
#[derive(Debug)]
pub enum WavError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a WAV this reader supports (mono 16-bit PCM).
    Unsupported(&'static str),
}

impl std::fmt::Display for WavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WavError::Io(e) => write!(f, "wav io: {e}"),
            WavError::Unsupported(what) => write!(f, "unsupported wav: {what}"),
        }
    }
}

impl std::error::Error for WavError {}

impl From<io::Error> for WavError {
    fn from(e: io::Error) -> Self {
        WavError::Io(e)
    }
}

/// Write `signal` as a mono 16-bit PCM WAV file. Samples are clamped to
/// `[-1, 1]` before quantization.
pub fn write_wav(signal: &Signal, path: impl AsRef<Path>) -> Result<(), WavError> {
    let mut out = File::create(path)?;
    let n = signal.len() as u32;
    let sr = signal.sample_rate();
    let data_bytes = n * 2;
    let byte_rate = sr * 2;

    // RIFF header.
    out.write_all(b"RIFF")?;
    out.write_all(&(36 + data_bytes).to_le_bytes())?;
    out.write_all(b"WAVE")?;
    // fmt chunk: PCM, mono, 16-bit.
    out.write_all(b"fmt ")?;
    out.write_all(&16u32.to_le_bytes())?;
    out.write_all(&1u16.to_le_bytes())?; // PCM
    out.write_all(&1u16.to_le_bytes())?; // mono
    out.write_all(&sr.to_le_bytes())?;
    out.write_all(&byte_rate.to_le_bytes())?;
    out.write_all(&2u16.to_le_bytes())?; // block align
    out.write_all(&16u16.to_le_bytes())?; // bits per sample
    // data chunk.
    out.write_all(b"data")?;
    out.write_all(&data_bytes.to_le_bytes())?;
    let mut buf = Vec::with_capacity(signal.len() * 2);
    for &s in signal.samples() {
        let q = (s.clamp(-1.0, 1.0) * i16::MAX as f32).round() as i16;
        buf.extend_from_slice(&q.to_le_bytes());
    }
    out.write_all(&buf)?;
    Ok(())
}

fn take<const N: usize>(data: &[u8], at: &mut usize) -> Result<[u8; N], WavError> {
    let end = *at + N;
    let slice = data
        .get(*at..end)
        .ok_or(WavError::Unsupported("truncated file"))?;
    *at = end;
    Ok(slice.try_into().expect("length checked"))
}

/// Read a mono 16-bit PCM WAV file back into a [`Signal`].
pub fn read_wav(path: impl AsRef<Path>) -> Result<Signal, WavError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut at = 0usize;
    if &take::<4>(&data, &mut at)? != b"RIFF" {
        return Err(WavError::Unsupported("missing RIFF magic"));
    }
    let _riff_len = u32::from_le_bytes(take(&data, &mut at)?);
    if &take::<4>(&data, &mut at)? != b"WAVE" {
        return Err(WavError::Unsupported("missing WAVE tag"));
    }
    // Walk chunks: we need fmt then data (tolerating extra chunks).
    let mut sample_rate = None;
    loop {
        let id = take::<4>(&data, &mut at)?;
        let len = u32::from_le_bytes(take(&data, &mut at)?) as usize;
        match &id {
            b"fmt " => {
                let body_at = at;
                let mut p = body_at;
                let format = u16::from_le_bytes(take(&data, &mut p)?);
                let channels = u16::from_le_bytes(take(&data, &mut p)?);
                let sr = u32::from_le_bytes(take(&data, &mut p)?);
                let _byte_rate = u32::from_le_bytes(take(&data, &mut p)?);
                let _block = u16::from_le_bytes(take(&data, &mut p)?);
                let bits = u16::from_le_bytes(take(&data, &mut p)?);
                if format != 1 {
                    return Err(WavError::Unsupported("not PCM"));
                }
                if channels != 1 {
                    return Err(WavError::Unsupported("not mono"));
                }
                if bits != 16 {
                    return Err(WavError::Unsupported("not 16-bit"));
                }
                sample_rate = Some(sr);
                at += len;
            }
            b"data" => {
                let sr = sample_rate.ok_or(WavError::Unsupported("data before fmt"))?;
                let body = data
                    .get(at..at + len)
                    .ok_or(WavError::Unsupported("truncated data chunk"))?;
                let samples: Vec<f32> = body
                    .chunks_exact(2)
                    .map(|b| i16::from_le_bytes([b[0], b[1]]) as f32 / i16::MAX as f32)
                    .collect();
                return Ok(Signal::from_samples(samples, sr));
            }
            _ => {
                // Skip unknown chunks (pad byte for odd sizes).
                at += len + (len & 1);
            }
        }
        if at >= data.len() {
            return Err(WavError::Unsupported("no data chunk"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Tone;
    use std::time::Duration;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mdn_wav_test_{name}.wav"))
    }

    #[test]
    fn roundtrip_preserves_signal() {
        let sig = Tone::new(700.0, Duration::from_millis(50), 0.5).render(44_100);
        let path = tmp("roundtrip");
        write_wav(&sig, &path).unwrap();
        let back = read_wav(&path).unwrap();
        assert_eq!(back.sample_rate(), 44_100);
        assert_eq!(back.len(), sig.len());
        for (a, b) in sig.samples().iter().zip(back.samples()) {
            assert!((a - b).abs() < 2.0 / i16::MAX as f32, "{a} vs {b}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn header_is_canonical_riff() {
        let sig = Signal::from_samples(vec![0.0; 100], 8_000);
        let path = tmp("header");
        write_wav(&sig, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(&bytes[12..16], b"fmt ");
        assert_eq!(&bytes[36..40], b"data");
        assert_eq!(bytes.len(), 44 + 200);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn loud_samples_clamped_not_wrapped() {
        let sig = Signal::from_samples(vec![2.0, -2.0], 8_000);
        let path = tmp("clamp");
        write_wav(&sig, &path).unwrap();
        let back = read_wav(&path).unwrap();
        assert!((back.samples()[0] - 1.0).abs() < 1e-3);
        assert!((back.samples()[1] + 1.0).abs() < 1e-3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a wav at all").unwrap();
        assert!(matches!(read_wav(&path), Err(WavError::Unsupported(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_stereo() {
        // Hand-build a stereo header.
        let sig = Signal::from_samples(vec![0.0; 10], 8_000);
        let path = tmp("stereo");
        write_wav(&sig, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[22] = 2; // channels = 2
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wav(&path), Err(WavError::Unsupported("not mono"))));
        std::fs::remove_file(path).unwrap();
    }
}
