//! Mel scale and mel-scaled spectrograms.
//!
//! The paper plots its spectrogram figures on the mel scale ("Frequency
//! values in the spectrogram are normalized by the mel-scale", Fig 5) — a
//! perceptual frequency warp that is logarithmic above ~1 kHz, which is why
//! the linear port sweep of Figure 4c shows up as a logarithmic curve.

use crate::spectrogram::Spectrogram;

/// Convert Hz to mel (O'Shaughnessy / HTK formula).
///
/// ```
/// use mdn_audio::mel::{hz_to_mel, mel_to_hz};
/// assert!((hz_to_mel(1000.0) - 1000.0).abs() < 1.0); // the scale's anchor
/// assert!((mel_to_hz(hz_to_mel(4321.0)) - 4321.0).abs() < 1e-6);
/// ```
#[inline]
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Convert mel to Hz (inverse of [`hz_to_mel`]).
#[inline]
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular mel filters over FFT bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// `filters[m]` = list of `(bin, weight)` with non-zero weight.
    filters: Vec<Vec<(usize, f64)>>,
    /// Centre frequency of each mel band, Hz.
    centers_hz: Vec<f64>,
}

impl MelFilterbank {
    /// Build `num_bands` triangular filters spanning `[lo_hz, hi_hz]`, for
    /// spectra with `num_bins` bins of width `bin_hz`.
    ///
    /// # Panics
    /// Panics if `num_bands` is zero or the band edges are degenerate.
    pub fn new(num_bands: usize, lo_hz: f64, hi_hz: f64, num_bins: usize, bin_hz: f64) -> Self {
        assert!(num_bands > 0, "need at least one mel band");
        assert!(
            hi_hz > lo_hz && lo_hz >= 0.0,
            "bad band edges {lo_hz}..{hi_hz}"
        );
        assert!(num_bins > 1 && bin_hz > 0.0, "bad spectrum shape");
        let lo_mel = hz_to_mel(lo_hz);
        let hi_mel = hz_to_mel(hi_hz);
        // num_bands + 2 edge points, evenly spaced in mel.
        let edges_hz: Vec<f64> = (0..num_bands + 2)
            .map(|i| mel_to_hz(lo_mel + (hi_mel - lo_mel) * i as f64 / (num_bands + 1) as f64))
            .collect();
        let mut filters = Vec::with_capacity(num_bands);
        let mut centers_hz = Vec::with_capacity(num_bands);
        for m in 0..num_bands {
            let (left, center, right) = (edges_hz[m], edges_hz[m + 1], edges_hz[m + 2]);
            centers_hz.push(center);
            let mut taps = Vec::new();
            let k_lo = (left / bin_hz).floor().max(0.0) as usize;
            let k_hi = ((right / bin_hz).ceil() as usize).min(num_bins - 1);
            for k in k_lo..=k_hi {
                let f = k as f64 * bin_hz;
                let w = if f < left || f > right {
                    0.0
                } else if f <= center {
                    if center > left {
                        (f - left) / (center - left)
                    } else {
                        1.0
                    }
                } else if right > center {
                    (right - f) / (right - center)
                } else {
                    1.0
                };
                if w > 0.0 {
                    taps.push((k, w));
                }
            }
            filters.push(taps);
        }
        Self {
            filters,
            centers_hz,
        }
    }

    /// Number of mel bands.
    pub fn num_bands(&self) -> usize {
        self.filters.len()
    }

    /// Centre frequency (Hz) of band `m`.
    pub fn center_hz(&self, m: usize) -> f64 {
        self.centers_hz[m]
    }

    /// Apply the filterbank to one magnitude spectrum (energy domain: the
    /// filters weight squared magnitudes).
    pub fn apply(&self, magnitudes: &[f64]) -> Vec<f64> {
        self.filters
            .iter()
            .map(|taps| {
                taps.iter()
                    .filter(|(k, _)| *k < magnitudes.len())
                    .map(|&(k, w)| w * magnitudes[k] * magnitudes[k])
                    .sum()
            })
            .collect()
    }

    /// The band whose centre is nearest `freq_hz`.
    pub fn hz_to_band(&self, freq_hz: f64) -> usize {
        self.centers_hz
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - freq_hz).abs().total_cmp(&(b.1 - freq_hz).abs()))
            .map(|(i, _)| i)
            .expect("filterbank has at least one band")
    }
}

/// A mel-scaled spectrogram: `frames × mel_bands` energies.
#[derive(Debug, Clone)]
pub struct MelSpectrogram {
    frames: Vec<Vec<f64>>,
    times: Vec<f64>,
    centers_hz: Vec<f64>,
}

impl MelSpectrogram {
    /// Warp a linear spectrogram through a mel filterbank with `num_bands`
    /// bands spanning `[lo_hz, hi_hz]`.
    pub fn from_spectrogram(sg: &Spectrogram, num_bands: usize, lo_hz: f64, hi_hz: f64) -> Self {
        let bank = MelFilterbank::new(num_bands, lo_hz, hi_hz, sg.num_bins().max(2), sg.bin_hz());
        let frames = sg.frames().iter().map(|f| bank.apply(f)).collect();
        let centers_hz = (0..bank.num_bands()).map(|m| bank.center_hz(m)).collect();
        Self {
            frames,
            times: sg.times().to_vec(),
            centers_hz,
        }
    }

    /// Number of time frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of mel bands.
    pub fn num_bands(&self) -> usize {
        self.centers_hz.len()
    }

    /// Energies of frame `t`.
    pub fn frame(&self, t: usize) -> &[f64] {
        &self.frames[t]
    }

    /// Frame centre times, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Centre frequencies of the mel bands, Hz.
    pub fn centers_hz(&self) -> &[f64] {
        &self.centers_hz
    }

    /// Per-frame index of the strongest band above `threshold` — the mel
    /// ridge that makes Figure 4c's port sweep look logarithmic.
    pub fn ridge(&self, threshold: f64) -> Vec<Option<usize>> {
        self.frames
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .filter(|(_, &e)| e >= threshold)
                    .map(|(m, _)| m)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;
    use crate::spectrogram::StftConfig;
    use crate::synth::{chirp, Tone};
    use std::time::Duration;

    const SR: u32 = 44_100;

    #[test]
    fn mel_hz_roundtrip() {
        for hz in [50.0, 440.0, 1000.0, 4000.0, 15000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn mel_1000hz_is_1000mel() {
        // The scale's anchor point: 1000 Hz ≈ 1000 mel.
        assert!((hz_to_mel(1000.0) - 999.99).abs() < 0.5);
    }

    #[test]
    fn mel_is_compressive_at_high_frequency() {
        let low_span = hz_to_mel(600.0) - hz_to_mel(500.0);
        let high_span = hz_to_mel(10_100.0) - hz_to_mel(10_000.0);
        assert!(low_span > 5.0 * high_span);
    }

    #[test]
    fn filterbank_centers_monotone() {
        let fb = MelFilterbank::new(40, 100.0, 8000.0, 2049, 44_100.0 / 4096.0);
        for m in 1..fb.num_bands() {
            assert!(fb.center_hz(m) > fb.center_hz(m - 1));
        }
    }

    #[test]
    fn tone_energizes_matching_band() {
        let s = Tone::new(1000.0, Duration::from_millis(200), 0.8).render(SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        let mel = MelSpectrogram::from_spectrogram(&sg, 64, 100.0, 8000.0);
        let fb = MelFilterbank::new(64, 100.0, 8000.0, sg.num_bins(), sg.bin_hz());
        let target = fb.hz_to_band(1000.0);
        let frame = mel.frame(mel.num_frames() / 2);
        let best = frame
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            (best as i64 - target as i64).abs() <= 1,
            "energy in band {best}, expected near {target}"
        );
    }

    #[test]
    fn chirp_ridge_rises_in_band_index() {
        let s = chirp(300.0, 6000.0, Duration::from_secs(1), 0.8, SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        let mel = MelSpectrogram::from_spectrogram(&sg, 64, 100.0, 8000.0);
        let ridge: Vec<usize> = mel.ridge(1e-6).into_iter().flatten().collect();
        assert!(ridge.last().unwrap() > &(ridge[0] + 20));
    }

    #[test]
    fn silence_ridge_is_none() {
        let s = Signal::silence(Duration::from_secs(1), SR);
        let sg = Spectrogram::compute(&s, &StftConfig::default_for(SR));
        let mel = MelSpectrogram::from_spectrogram(&sg, 32, 100.0, 8000.0);
        assert!(mel.ridge(1e-9).iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "at least one mel band")]
    fn zero_bands_panics() {
        MelFilterbank::new(0, 100.0, 8000.0, 1025, 43.0);
    }

    #[test]
    #[should_panic(expected = "bad band edges")]
    fn inverted_edges_panic() {
        MelFilterbank::new(10, 8000.0, 100.0, 1025, 43.0);
    }

    #[test]
    fn hz_to_band_picks_nearest() {
        let fb = MelFilterbank::new(20, 100.0, 8000.0, 2049, 44_100.0 / 4096.0);
        let m = fb.hz_to_band(1000.0);
        let d_chosen = (fb.center_hz(m) - 1000.0).abs();
        for other in 0..fb.num_bands() {
            assert!((fb.center_hz(other) - 1000.0).abs() >= d_chosen - 1e-9);
        }
    }
}
