//! Sample buffers and level arithmetic.
//!
//! A [`Signal`] is a mono buffer of `f32` samples tagged with a sample rate.
//! All of the DSP in this crate operates on `Signal`s; the acoustic layer
//! renders them and the MDN detector consumes them.
//!
//! Levels use two conventions, mirroring how the paper talks about sound:
//!
//! * **dBFS** (decibels relative to full scale): digital amplitude, where a
//!   full-scale sine peaks at 0 dBFS.
//! * **dB SPL** (sound pressure level): acoustic loudness as the paper
//!   reports it ("at least 30 dB", "datacenter noise may exceed 85 dBA").
//!   The acoustic layer maps SPL to digital amplitude through a fixed
//!   calibration constant: [`SPL_FULL_SCALE_DB`] dB SPL corresponds to a
//!   full-scale (amplitude 1.0) sine.

use std::f64::consts::PI;
use std::fmt;
use std::time::Duration;

/// The SPL, in dB, that maps to digital full scale (amplitude 1.0).
///
/// 100 dB SPL at amplitude 1.0 leaves headroom above the paper's loudest
/// environment (85 dBA datacenter) while keeping a 30 dB SPL tone
/// (amplitude ≈ 10^((30-100)/20) ≈ 3.2e-4) far above `f32` precision.
pub const SPL_FULL_SCALE_DB: f64 = 100.0;

/// Default sample rate used throughout the reproduction (CD quality, the
/// rate commodity microphones and the paper's Pi sound cards capture at).
pub const DEFAULT_SAMPLE_RATE: u32 = 44_100;

/// Convert an amplitude ratio to decibels (`20·log10`).
///
/// Returns `f64::NEG_INFINITY` for a zero or negative ratio.
#[inline]
pub fn ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Convert decibels to an amplitude ratio (`10^(db/20)`).
#[inline]
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Convert a sound pressure level in dB SPL to a digital amplitude under the
/// crate's calibration ([`SPL_FULL_SCALE_DB`] dB SPL ↔ amplitude 1.0).
#[inline]
pub fn spl_to_amplitude(spl_db: f64) -> f64 {
    db_to_ratio(spl_db - SPL_FULL_SCALE_DB)
}

/// Convert a digital amplitude to dB SPL under the crate's calibration.
#[inline]
pub fn amplitude_to_spl(amplitude: f64) -> f64 {
    ratio_to_db(amplitude) + SPL_FULL_SCALE_DB
}

/// A half-open time window `[from, from + len)` on a shared timeline.
///
/// This is *the* capture-window currency of the workspace: scene renders,
/// controller captures/listens, fault-plan intervals and signal slicing
/// all take a `Window` instead of ad-hoc `(from, len)` / `(from, to)`
/// `Duration` pairs. A window maps to the absolute sample range
/// [`Window::sample_range`] — `[round(from·sr), round(end·sr))` — so
/// adjacent windows tile the sample grid exactly: rendering `[a, b)` and
/// `[b, c)` separately concatenates bit-for-bit into a render of `[a, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Window start (inclusive).
    pub from: Duration,
    /// Window length.
    pub len: Duration,
}

impl Window {
    /// The window `[from, from + len)`.
    pub fn new(from: Duration, len: Duration) -> Self {
        Self { from, len }
    }

    /// The window `[0, len)` — a render "from the start", as
    /// `Scene::render_at` has always meant.
    pub fn from_start(len: Duration) -> Self {
        Self {
            from: Duration::ZERO,
            len,
        }
    }

    /// The window `[from, to)`.
    ///
    /// # Panics
    /// Panics unless `from <= to`.
    pub fn between(from: Duration, to: Duration) -> Self {
        assert!(from <= to, "window must start before it ends");
        Self {
            from,
            len: to - from,
        }
    }

    /// Window end (exclusive): `from + len`.
    pub fn end(&self) -> Duration {
        self.from + self.len
    }

    /// True for a zero-length window.
    pub fn is_empty(&self) -> bool {
        self.len.is_zero()
    }

    /// Does the window contain `t`?
    pub fn contains(&self, t: Duration) -> bool {
        t >= self.from && t < self.end()
    }

    /// The overlap of two windows, or `None` when they are disjoint
    /// (sharing only an endpoint counts as disjoint).
    pub fn intersect(&self, other: &Window) -> Option<Window> {
        let from = self.from.max(other.from);
        let to = self.end().min(other.end());
        (from < to).then(|| Window::between(from, to))
    }

    /// The absolute sample range `[round(from·sr), round(end·sr))` this
    /// window covers at `sample_rate`. Deriving both endpoints from the
    /// timeline (rather than rounding the length) is what makes adjacent
    /// windows tile the sample grid without gaps or overlaps.
    pub fn sample_range(&self, sample_rate: u32) -> (usize, usize) {
        let a = duration_to_samples(self.from, sample_rate);
        let b = duration_to_samples(self.end(), sample_rate);
        (a, b.max(a))
    }

    /// Number of samples the window covers at `sample_rate`.
    pub fn num_samples(&self, sample_rate: u32) -> usize {
        let (a, b) = self.sample_range(sample_rate);
        b - a
    }
}

/// A mono buffer of `f32` samples at a fixed sample rate.
#[derive(Clone, PartialEq)]
pub struct Signal {
    samples: Vec<f32>,
    sample_rate: u32,
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signal")
            .field("len", &self.samples.len())
            .field("sample_rate", &self.sample_rate)
            .field("duration_s", &self.duration().as_secs_f64())
            .field("rms", &self.rms())
            .finish()
    }
}

impl Signal {
    /// Create a signal from raw samples.
    ///
    /// # Panics
    /// Panics if `sample_rate` is zero.
    pub fn from_samples(samples: Vec<f32>, sample_rate: u32) -> Self {
        assert!(sample_rate > 0, "sample rate must be non-zero");
        Self {
            samples,
            sample_rate,
        }
    }

    /// A silent signal of the given duration.
    pub fn silence(duration: Duration, sample_rate: u32) -> Self {
        let n = duration_to_samples(duration, sample_rate);
        Self::from_samples(vec![0.0; n], sample_rate)
    }

    /// An empty signal (zero samples) at the given rate.
    pub fn empty(sample_rate: u32) -> Self {
        Self::from_samples(Vec::new(), sample_rate)
    }

    /// The sample rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the buffer holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration of the buffer.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.samples.len() as f64 / self.sample_rate as f64)
    }

    /// Immutable view of the samples.
    #[inline]
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Mutable view of the samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f32] {
        &mut self.samples
    }

    /// Consume the signal, returning the sample buffer.
    pub fn into_samples(self) -> Vec<f32> {
        self.samples
    }

    /// Root-mean-square amplitude of the buffer (0.0 for an empty buffer).
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self.samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        (sum_sq / self.samples.len() as f64).sqrt()
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> f64 {
        self.samples
            .iter()
            .fold(0.0f64, |m, &s| m.max((s as f64).abs()))
    }

    /// RMS level in dBFS (a full-scale sine reads ≈ −3.01 dBFS RMS).
    pub fn rms_dbfs(&self) -> f64 {
        ratio_to_db(self.rms())
    }

    /// RMS level in dB SPL under the crate calibration.
    pub fn rms_spl(&self) -> f64 {
        amplitude_to_spl(self.rms())
    }

    /// Mix `other` into `self` sample-by-sample, starting at `offset`
    /// samples. `self` is grown with silence if `other` extends past its
    /// end.
    ///
    /// # Panics
    /// Panics if the sample rates differ.
    pub fn mix_at(&mut self, other: &Signal, offset: usize) {
        assert_eq!(
            self.sample_rate, other.sample_rate,
            "cannot mix signals with different sample rates"
        );
        let needed = offset + other.len();
        if needed > self.samples.len() {
            self.samples.resize(needed, 0.0);
        }
        for (dst, &src) in self.samples[offset..needed].iter_mut().zip(other.samples()) {
            *dst += src;
        }
    }

    /// Mix `other` into `self` starting at time `at`.
    pub fn mix_at_time(&mut self, other: &Signal, at: Duration) {
        let offset = duration_to_samples(at, self.sample_rate);
        self.mix_at(other, offset);
    }

    /// Multiply every sample by `gain`.
    pub fn scale(&mut self, gain: f64) {
        for s in &mut self.samples {
            *s = (*s as f64 * gain) as f32;
        }
    }

    /// Return a copy scaled by `gain`.
    pub fn scaled(&self, gain: f64) -> Signal {
        let mut out = self.clone();
        out.scale(gain);
        out
    }

    /// Extract the half-open sample range `[start, end)` as a new signal.
    /// The range is clamped to the buffer.
    pub fn slice(&self, start: usize, end: usize) -> Signal {
        let end = end.min(self.samples.len());
        let start = start.min(end);
        Signal::from_samples(self.samples[start..end].to_vec(), self.sample_rate)
    }

    /// Extract the time window `w` as a new signal, covering exactly
    /// `w.sample_range(self.sample_rate())` (clamped to the buffer).
    pub fn window(&self, w: Window) -> Signal {
        let (start, end) = w.sample_range(self.sample_rate);
        self.slice(start, end)
    }

    /// Reset the buffer to `n` zero samples, keeping allocated capacity —
    /// the scratch-reuse primitive behind the windowed render path.
    pub fn reset(&mut self, n: usize) {
        self.samples.clear();
        self.samples.resize(n, 0.0);
    }

    /// Append another signal (must share the sample rate).
    pub fn append(&mut self, other: &Signal) {
        assert_eq!(
            self.sample_rate, other.sample_rate,
            "cannot append signals with different sample rates"
        );
        self.samples.extend_from_slice(other.samples());
    }

    /// Pad with trailing silence until the buffer holds at least `n` samples.
    pub fn pad_to(&mut self, n: usize) {
        if self.samples.len() < n {
            self.samples.resize(n, 0.0);
        }
    }

    /// Hard-clip every sample into `[-1.0, 1.0]`, as a real DAC would.
    pub fn clip(&mut self) {
        for s in &mut self.samples {
            *s = s.clamp(-1.0, 1.0);
        }
    }

    /// Split the signal into consecutive non-overlapping chunks of
    /// `chunk_len` samples; a final partial chunk is discarded.
    pub fn chunks(&self, chunk_len: usize) -> impl Iterator<Item = Signal> + '_ {
        assert!(chunk_len > 0, "chunk length must be non-zero");
        self.samples
            .chunks_exact(chunk_len)
            .map(move |c| Signal::from_samples(c.to_vec(), self.sample_rate))
    }
}

/// Number of samples covering `duration` at `sample_rate` (rounded to
/// nearest).
#[inline]
pub fn duration_to_samples(duration: Duration, sample_rate: u32) -> usize {
    (duration.as_secs_f64() * sample_rate as f64).round() as usize
}

/// Duration covered by `n` samples at `sample_rate`.
#[inline]
pub fn samples_to_duration(n: usize, sample_rate: u32) -> Duration {
    Duration::from_secs_f64(n as f64 / sample_rate as f64)
}

/// Generate one sample of a unit sine at `freq_hz`, sample index `i`.
#[inline]
pub fn sine_sample(freq_hz: f64, i: usize, sample_rate: u32, phase: f64) -> f64 {
    (2.0 * PI * freq_hz * i as f64 / sample_rate as f64 + phase).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-60.0, -20.0, -3.0, 0.0, 6.0] {
            let ratio = db_to_ratio(db);
            assert!((ratio_to_db(ratio) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_ratio_is_neg_infinity() {
        assert_eq!(ratio_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(ratio_to_db(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn spl_calibration_full_scale() {
        assert!((spl_to_amplitude(SPL_FULL_SCALE_DB) - 1.0).abs() < 1e-12);
        assert!((amplitude_to_spl(1.0) - SPL_FULL_SCALE_DB).abs() < 1e-12);
    }

    #[test]
    fn spl_30db_tone_is_detectable_amplitude() {
        // The paper's quietest tone (30 dB SPL) must stay well above f32
        // epsilon under the calibration.
        let a = spl_to_amplitude(30.0);
        assert!(a > 1e-5, "30 dB SPL amplitude {a} too small");
    }

    #[test]
    fn silence_has_right_length_and_zero_rms() {
        let s = Signal::silence(Duration::from_millis(50), 44_100);
        assert_eq!(s.len(), 2205);
        assert_eq!(s.rms(), 0.0);
        assert_eq!(s.rms_dbfs(), f64::NEG_INFINITY);
    }

    #[test]
    fn duration_roundtrip() {
        let s = Signal::silence(Duration::from_millis(300), 48_000);
        let d = s.duration();
        assert!((d.as_secs_f64() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn rms_of_full_scale_sine_is_minus_3dbfs() {
        let sr = 44_100;
        let samples: Vec<f32> = (0..sr as usize)
            .map(|i| sine_sample(441.0, i, sr, 0.0) as f32)
            .collect();
        let s = Signal::from_samples(samples, sr);
        // RMS of a sine is 1/sqrt(2) => -3.0103 dBFS.
        assert!(
            (s.rms_dbfs() - (-3.0103)).abs() < 0.05,
            "got {}",
            s.rms_dbfs()
        );
    }

    #[test]
    fn mix_at_grows_buffer_and_adds() {
        let sr = 8_000;
        let mut a = Signal::from_samples(vec![1.0, 1.0], sr);
        let b = Signal::from_samples(vec![0.5, 0.5, 0.5], sr);
        a.mix_at(&b, 1);
        assert_eq!(a.samples(), &[1.0, 1.5, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "different sample rates")]
    fn mix_rejects_rate_mismatch() {
        let mut a = Signal::silence(Duration::from_millis(10), 44_100);
        let b = Signal::silence(Duration::from_millis(10), 48_000);
        a.mix_at(&b, 0);
    }

    #[test]
    fn scale_and_peak() {
        let mut s = Signal::from_samples(vec![0.5, -0.25], 8_000);
        s.scale(2.0);
        assert_eq!(s.samples(), &[1.0, -0.5]);
        assert!((s.peak() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slice_clamps_to_buffer() {
        let s = Signal::from_samples(vec![1.0, 2.0, 3.0], 8_000);
        let w = s.slice(1, 10);
        assert_eq!(w.samples(), &[2.0, 3.0]);
        let e = s.slice(5, 10);
        assert!(e.is_empty());
    }

    #[test]
    fn window_by_time() {
        let sr = 1_000;
        let samples: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let s = Signal::from_samples(samples, sr);
        let w = s.window(Window::new(
            Duration::from_millis(100),
            Duration::from_millis(50),
        ));
        assert_eq!(w.len(), 50);
        assert_eq!(w.samples()[0], 100.0);
    }

    #[test]
    fn window_endpoints_are_half_open() {
        let w = Window::between(Duration::from_millis(100), Duration::from_millis(200));
        assert!(!w.contains(Duration::from_millis(99)));
        assert!(w.contains(Duration::from_millis(100)));
        assert!(w.contains(Duration::from_millis(199)));
        assert!(!w.contains(Duration::from_millis(200)));
        assert_eq!(w.end(), Duration::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "start before")]
    fn window_rejects_inverted_endpoints() {
        Window::between(Duration::from_millis(200), Duration::from_millis(100));
    }

    #[test]
    fn window_intersection() {
        let ms = Duration::from_millis;
        let a = Window::between(ms(100), ms(300));
        let b = Window::between(ms(200), ms(400));
        assert_eq!(a.intersect(&b), Some(Window::between(ms(200), ms(300))));
        let c = Window::between(ms(300), ms(400));
        assert_eq!(a.intersect(&c), None, "touching windows are disjoint");
        assert_eq!(a.intersect(&a), Some(a));
    }

    #[test]
    fn adjacent_windows_tile_the_sample_grid() {
        // Fractional boundaries: rounding each endpoint (not the length)
        // means [a,b) and [b,c) never overlap or leave a gap.
        let sr = 44_100;
        let a = Window::between(Duration::ZERO, Duration::from_micros(10_700));
        let b = Window::between(Duration::from_micros(10_700), Duration::from_micros(21_300));
        let (_, a_end) = a.sample_range(sr);
        let (b_start, _) = b.sample_range(sr);
        assert_eq!(a_end, b_start);
        assert_eq!(
            a.num_samples(sr) + b.num_samples(sr),
            Window::between(Duration::ZERO, Duration::from_micros(21_300)).num_samples(sr)
        );
    }

    #[test]
    fn reset_zeroes_and_resizes() {
        let mut s = Signal::from_samples(vec![1.0, 2.0, 3.0], 8_000);
        s.reset(2);
        assert_eq!(s.samples(), &[0.0, 0.0]);
        s.reset(4);
        assert_eq!(s.samples(), &[0.0; 4]);
    }

    #[test]
    fn chunks_drop_partial_tail() {
        let s = Signal::from_samples(vec![0.0; 10], 8_000);
        let n: Vec<_> = s.chunks(3).collect();
        assert_eq!(n.len(), 3);
        assert!(n.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn clip_bounds_samples() {
        let mut s = Signal::from_samples(vec![2.0, -3.0, 0.5], 8_000);
        s.clip();
        assert_eq!(s.samples(), &[1.0, -1.0, 0.5]);
    }

    #[test]
    fn append_concatenates() {
        let sr = 8_000;
        let mut a = Signal::from_samples(vec![1.0], sr);
        let b = Signal::from_samples(vec![2.0, 3.0], sr);
        a.append(&b);
        assert_eq!(a.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn duration_samples_roundtrip() {
        for (ms, sr) in [(50u64, 44_100u32), (300, 48_000), (30, 16_000)] {
            let n = duration_to_samples(Duration::from_millis(ms), sr);
            let d = samples_to_duration(n, sr);
            assert!((d.as_secs_f64() - ms as f64 / 1000.0).abs() < 1.0 / sr as f64);
        }
    }
}
