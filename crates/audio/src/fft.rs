//! Fast Fourier Transform.
//!
//! An iterative radix-2 Cooley–Tukey FFT implemented from scratch (the paper
//! leans on the FFT for every detection pipeline, so it is a substrate we
//! own). Provides forward/inverse complex transforms, a real-input
//! convenience wrapper, and a reusable [`FftPlanner`] that caches twiddle
//! factors — Figure 2b of the paper benchmarks exactly this code path.

use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number; deliberately minimal (no external num crate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Round `n` up to the next power of two (minimum 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// A planner that caches bit-reversal tables and twiddle factors per size,
/// so repeated transforms of the same length (the common case in an STFT or
/// a detector loop) pay the trigonometry once.
///
/// ```
/// use mdn_audio::fft::FftPlanner;
/// let mut planner = FftPlanner::new();
/// // ~50 ms at 44.1 kHz: 2205 samples, padded to a 4096-point transform.
/// let samples = vec![0.5f32; 2205];
/// let spectrum = planner.forward_real(&samples, None);
/// assert_eq!(spectrum.len(), 4096);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner {
    plans: Vec<Plan>,
}

#[derive(Debug)]
struct Plan {
    n: usize,
    bitrev: Vec<u32>,
    /// Forward twiddles, one table of n/2 factors.
    twiddles: Vec<Complex>,
}

impl Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_angle(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Self {
            n,
            bitrev,
            twiddles,
        }
    }

    /// In-place iterative radix-2 DIT FFT. `inverse` conjugates twiddles;
    /// the caller handles 1/n scaling.
    fn execute(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

impl FftPlanner {
    /// A planner with no cached plans.
    pub fn new() -> Self {
        Self::default()
    }

    fn plan(&mut self, n: usize) -> &Plan {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        // Plans are kept sorted by size so repeated lookups are a binary
        // search, not a linear re-scan of every cached plan.
        let idx = match self.plans.binary_search_by_key(&n, |p| p.n) {
            Ok(idx) => idx,
            Err(idx) => {
                self.plans.insert(idx, Plan::new(n));
                idx
            }
        };
        &self.plans[idx]
    }

    /// Forward FFT in place. `buf.len()` must be a power of two.
    pub fn forward(&mut self, buf: &mut [Complex]) {
        self.plan(buf.len()).execute(buf, false);
    }

    /// Inverse FFT in place (includes the 1/n scaling).
    pub fn inverse(&mut self, buf: &mut [Complex]) {
        let n = buf.len();
        self.plan(n).execute(buf, true);
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            v.re *= scale;
            v.im *= scale;
        }
    }

    /// FFT of real samples, zero-padded to the next power of two (at least
    /// `min_size` if given). Returns the full complex spectrum of length
    /// `n`; bins `0..=n/2` are the non-redundant half.
    pub fn forward_real(&mut self, samples: &[f32], min_size: Option<usize>) -> Vec<Complex> {
        let mut buf = Vec::new();
        self.forward_real_into(samples, min_size, &mut buf);
        buf
    }

    /// Like [`FftPlanner::forward_real`], but writes the spectrum into
    /// `buf`, reusing its allocation. In a detector loop transforming one
    /// frame after another, this makes the FFT path allocation-free after
    /// the first call.
    pub fn forward_real_into(
        &mut self,
        samples: &[f32],
        min_size: Option<usize>,
        buf: &mut Vec<Complex>,
    ) {
        let n = next_pow2(samples.len().max(min_size.unwrap_or(1)));
        buf.clear();
        buf.resize(n, Complex::ZERO);
        for (dst, &s) in buf.iter_mut().zip(samples) {
            dst.re = s as f64;
        }
        self.forward(buf);
    }
}

/// One-shot forward FFT (allocates a fresh plan; prefer [`FftPlanner`] in
/// loops).
pub fn fft(buf: &mut [Complex]) {
    FftPlanner::new().forward(buf);
}

/// One-shot inverse FFT.
pub fn ifft(buf: &mut [Complex]) {
    FftPlanner::new().inverse(buf);
}

/// Naive O(n²) DFT, used as the correctness oracle in tests and nowhere
/// else.
pub fn dft_reference(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                acc = acc + x * Complex::from_angle(-2.0 * PI * (k * j) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_dft_reference() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut buf = input.clone();
            fft(&mut buf);
            let expect = dft_reference(&input);
            assert_close(&buf, &expect, 1e-8 * n as f64);
        }
    }

    #[test]
    fn roundtrip_forward_inverse() {
        let n = 1024;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut buf = input.clone();
        let mut planner = FftPlanner::new();
        planner.forward(&mut buf);
        planner.inverse(&mut buf);
        assert_close(&buf, &input, 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 64];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for v in &buf {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        // A sine exactly on bin 8 of a 256-pt FFT.
        let n = 256;
        let k = 8;
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| Complex::new((2.0 * PI * k as f64 * i as f64 / n as f64).sin(), 0.0))
            .collect();
        fft(&mut buf);
        // Energy at bins k and n-k, magnitude n/2 each.
        assert!((buf[k].norm() - n as f64 / 2.0).abs() < 1e-6);
        assert!((buf[n - k].norm() - n as f64 / 2.0).abs() < 1e-6);
        for (i, v) in buf.iter().enumerate() {
            if i != k && i != n - k {
                assert!(v.norm() < 1e-6, "bin {i} leaked {}", v.norm());
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 512;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        let time_energy: f64 = input.iter().map(|v| v.norm_sq()).sum();
        let mut buf = input;
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 128;
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.0))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.0, (i as f64 * 2.0).sin()))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fs);
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fs, &combined, 1e-9);
    }

    #[test]
    fn forward_real_pads_to_pow2() {
        let mut planner = FftPlanner::new();
        let samples = vec![1.0f32; 2205]; // the paper's ~50 ms at 44.1 kHz
        let spec = planner.forward_real(&samples, None);
        assert_eq!(spec.len(), 4096);
    }

    #[test]
    fn forward_real_respects_min_size() {
        let mut planner = FftPlanner::new();
        let spec = planner.forward_real(&[1.0, 2.0], Some(64));
        assert_eq!(spec.len(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut buf = vec![Complex::ZERO; 6];
        fft(&mut buf);
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let mut planner = FftPlanner::new();
        let samples: Vec<f32> = (0..128)
            .map(|i| ((i * 13 % 97) as f32 / 97.0) - 0.5)
            .collect();
        let spec = planner.forward_real(&samples, None);
        let n = spec.len();
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_real_into_reuses_buffer_and_matches() {
        let mut planner = FftPlanner::new();
        let samples: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).sin()).collect();
        let fresh = planner.forward_real(&samples, Some(512));
        let mut buf = Vec::new();
        planner.forward_real_into(&samples, Some(512), &mut buf);
        assert_eq!(buf, fresh);
        let cap = buf.capacity();
        // Second call with the same size must not reallocate.
        planner.forward_real_into(&samples, Some(512), &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf, fresh);
        // Shrinking to a smaller transform reuses the same allocation.
        planner.forward_real_into(&samples[..100], Some(128), &mut buf);
        assert_eq!(buf.len(), 128);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn plan_cache_handles_interleaved_sizes() {
        // Exercise the sorted-insert path: sizes arriving out of order must
        // all resolve to correct transforms.
        let mut planner = FftPlanner::new();
        for n in [1024usize, 64, 4096, 256, 64, 1024, 16] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0))
                .collect();
            let mut buf = input.clone();
            planner.forward(&mut buf);
            planner.inverse(&mut buf);
            assert_close(&buf, &input, 1e-9);
        }
    }

    #[test]
    fn planner_reuse_is_consistent() {
        let mut planner = FftPlanner::new();
        let input: Vec<Complex> = (0..64).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut a = input.clone();
        let mut b = input.clone();
        planner.forward(&mut a);
        planner.forward(&mut b); // reuses cached plan
        assert_close(&a, &b, 0.0);
    }
}
